"""Synthetic ground truth: object instances with box trajectories.

This is the stand-in for the real world behind the paper's datasets. A
:class:`SyntheticWorld` holds every object instance in a repository — its
class, which video it appears in, the frame interval it is visible for, and
a parametric box trajectory. The simulated detector *observes* this world
with noise; the discriminator's simulated tracker *follows* trajectories the
way a pixel tracker would; and the evaluation treats the world as the exact
ground truth that the paper could only approximate (§V-A).

What matters for reproducing the paper's results is the *joint distribution*
of instance durations (the ``p_i``) and instance placement across chunks
(the skew); the builder exposes both directly:

* durations are lognormal in seconds (converted to frames per video fps);
* placement supports three spatial processes over the global timeline:
  ``uniform``, ``normal(fraction)`` (95% of instances in the central
  ``fraction`` — the paper's §IV-B model), and ``hotspots(k, fraction)``
  (instances cluster around k random locations — how skew actually arises
  in dashcam data: §IV-B "time of day or location (city, country, highway,
  camera angle)").
"""

from __future__ import annotations

from collections.abc import Sequence as SequenceABC
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import DatasetError
from repro.theory.instances import lognormal_durations
from repro.utils.rng import RngFactory
from repro.video.geometry import BoundingBox, interpolate
from repro.video.video import Video, VideoRepository

_Z_95 = 1.959963984540054

#: Largest frames × instances product resolved via one broadcast interval
#: test in :meth:`SyntheticWorld.visible_uids_batch`; bigger products walk
#: the per-frame index instead to bound memory.
_VISIBILITY_MASK_BUDGET = 4_000_000


@dataclass(frozen=True)
class ObjectInstance:
    """One distinct real-world object visible in one video interval.

    Attributes
    ----------
    uid:
        Globally unique instance id (dense, 0-based).
    class_name:
        Object category ("traffic light", ...).
    video, start, end:
        Visibility interval ``[start, end)`` in frames of ``video``.
    entry_box, exit_box:
        Box at the first and last visible frame; positions in between are
        linearly interpolated (adequate for IoU matching across the frame
        gaps a sampler produces; real trajectories are smooth at this
        scale).
    global_start:
        ``start`` translated to repository-global frame coordinates.
    """

    uid: int
    class_name: str
    video: int
    start: int
    end: int
    entry_box: BoundingBox
    exit_box: BoundingBox
    global_start: int

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise DatasetError(f"instance {self.uid} has empty interval")

    @property
    def duration(self) -> int:
        return self.end - self.start

    @property
    def global_end(self) -> int:
        return self.global_start + self.duration

    @property
    def global_midpoint(self) -> int:
        return self.global_start + self.duration // 2

    def visible_in(self, video: int, frame: int) -> bool:
        return video == self.video and self.start <= frame < self.end

    def box_at(self, frame: int) -> BoundingBox:
        """Ground-truth box at ``frame`` (must be inside the interval)."""
        if not self.start <= frame < self.end:
            raise DatasetError(
                f"frame {frame} outside instance {self.uid} interval "
                f"[{self.start}, {self.end})"
            )
        if self.duration == 1:
            return self.entry_box
        t = (frame - self.start) / (self.duration - 1)
        return interpolate(self.entry_box, self.exit_box, t)


@dataclass(frozen=True)
class ClassSpec:
    """How many instances of a class to synthesise and how they behave.

    Attributes
    ----------
    count:
        Number of distinct instances (at scale 1.0).
    mean_duration_s:
        Mean visibility duration in seconds (lognormal across instances).
    skew:
        Placement process: ``("uniform",)``, ``("normal", fraction)`` or
        ``("hotspots", k, fraction)``; see the module docstring.
    size_range:
        (min, max) box side length in pixels.
    duration_sigma_log:
        Lognormal sigma of durations (0.75 reproduces the paper's §IV-B
        spread of roughly 100x between shortest and longest).
    """

    name: str
    count: int
    mean_duration_s: float
    skew: Tuple = ("uniform",)
    size_range: Tuple[float, float] = (40.0, 220.0)
    duration_sigma_log: float = 0.75

    def __post_init__(self) -> None:
        if self.count < 0:
            raise DatasetError(f"negative count for class {self.name}")
        if self.mean_duration_s <= 0:
            raise DatasetError(f"non-positive duration for class {self.name}")
        if self.skew[0] not in ("uniform", "normal", "hotspots"):
            raise DatasetError(f"unknown skew process {self.skew[0]!r}")


@dataclass(frozen=True)
class InstanceArrays:
    """Columnar instance data, each array indexed by uid.

    ``entry``/``exit`` are (N, 4) xyxy boxes; ``class_codes`` index into
    ``class_names`` (the sorted class list, matching
    :meth:`SyntheticWorld.class_names`).
    """

    starts: np.ndarray
    ends: np.ndarray
    durations: np.ndarray
    entry: np.ndarray
    exit: np.ndarray
    class_codes: np.ndarray
    class_names: Tuple[str, ...]


class _LazyInstances(SequenceABC):
    """Read-only instance list over a shared world's columns.

    Worlds attached from shared memory carry columns, not
    :class:`ObjectInstance` objects; the few code paths that still want
    objects (the discriminator materializes one per *new track*, the
    theory bounds iterate a class) get them built on first access, per
    uid, from the zero-copy columns — never as an up-front per-task
    deserialization.
    """

    __slots__ = ("_world", "_cache")

    def __init__(self, world: "SyntheticWorld"):
        self._world = world
        self._cache: Dict[int, ObjectInstance] = {}

    def __len__(self) -> int:
        return self._world.num_instances

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        n = len(self)
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError(index)
        instance = self._cache.get(index)
        if instance is None:
            instance = self._cache[index] = self._world._instance_at(index)
        return instance


class SyntheticWorld:
    """All ground-truth instances of a repository, indexed for fast lookup.

    A world pickles two ways. Normally the instance list travels by
    value, exactly as before. While published to a
    :class:`~repro.parallel.shm.SharedWorldStore`, pickling emits only a
    ~100-byte segment handle and the receiving process rebuilds the
    world as zero-copy numpy views over the shared pages (see
    :meth:`from_shared_columns`); results are identical either way —
    every query resolves against the same column values.
    """

    def __init__(self, repository: VideoRepository, instances: List[ObjectInstance]):
        self.repository = repository
        self._instances: "List[ObjectInstance] | None" = instances
        self._lazy: "_LazyInstances | None" = None
        self._arrays: "InstanceArrays | None" = None
        self._shared_handle = None
        self._videos_col: "np.ndarray | None" = None
        self._global_starts_col: "np.ndarray | None" = None
        self._content_digest: "bytes | None" = None
        self._by_class: "Dict[str, List[int]] | None" = {}
        for idx, inst in enumerate(instances):
            if idx != inst.uid:
                raise DatasetError("instance uids must be dense and ordered")
            self._by_class.setdefault(inst.class_name, []).append(idx)
        # Per-video interval index sorted by start frame, for visible().
        self._video_index: Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        per_video: Dict[int, List[int]] = {}
        for idx, inst in enumerate(instances):
            per_video.setdefault(inst.video, []).append(idx)
        for video, idxs in per_video.items():
            ids = np.array(idxs, dtype=np.int64)
            starts = np.array([instances[i].start for i in idxs], dtype=np.int64)
            ends = np.array([instances[i].end for i in idxs], dtype=np.int64)
            order = np.argsort(starts)
            self._video_index[video] = (starts[order], ends[order], ids[order])

    # -- queries ---------------------------------------------------------

    @property
    def instances(self) -> Sequence[ObjectInstance]:
        """The instance list (lazily materialized for attached worlds)."""
        if self._instances is not None:
            return self._instances
        if self._lazy is None:
            self._lazy = _LazyInstances(self)
        return self._lazy

    @property
    def num_instances(self) -> int:
        if self._instances is None:
            return int(self.instance_arrays().starts.size)
        return len(self._instances)

    def class_names(self) -> List[str]:
        if self._by_class is None:
            # Attached worlds: the published list is already sorted.
            return list(self.instance_arrays().class_names)
        return sorted(self._by_class)

    def _class_index(self) -> Dict[str, List[int]]:
        by_class = self._by_class
        if by_class is None:
            arrays = self.instance_arrays()
            by_class = {}
            for code, name in enumerate(arrays.class_names):
                uids = np.nonzero(arrays.class_codes == code)[0]
                if uids.size:
                    by_class[name] = uids.tolist()
            self._by_class = by_class
        return by_class

    def instances_of(self, class_name: str) -> List[ObjectInstance]:
        instances = self.instances
        return [instances[i] for i in self._class_index().get(class_name, [])]

    def count_of(self, class_name: str) -> int:
        """Ground-truth distinct instance count for a class (the recall
        denominator of §V-A)."""
        return len(self._class_index().get(class_name, []))

    def visible(self, video: int, frame: int) -> List[ObjectInstance]:
        """Instances (any class) visible at (video, frame)."""
        return [self.instances[int(i)] for i in self.visible_uids(video, frame)]

    def visible_uids(self, video: int, frame: int) -> np.ndarray:
        """Uids of instances visible at (video, frame), as an int64 array.

        The array-returning variant of :meth:`visible`: hot paths (the
        vectorised detector) consume uids directly against
        :meth:`instance_arrays` without materialising instance objects.
        """
        index = self._video_index.get(video)
        if index is None:
            return np.empty(0, dtype=np.int64)
        starts, ends, ids = index
        hi = np.searchsorted(starts, frame, side="right")
        active = ends[:hi] > frame
        return ids[:hi][active]

    def visible_uids_batch(
        self, video: int, frames: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Visibility for many frames of one video in one query.

        Returns ``(uids_flat, counts)``: the concatenation of
        ``visible_uids(video, f)`` over ``frames`` (order preserved) and
        the per-frame counts. Small workloads resolve through one
        broadcast interval test; large ``frames × instances`` products
        fall back to the per-frame index walk to bound memory.
        """
        frames = np.asarray(frames, dtype=np.int64)
        index = self._video_index.get(video)
        if index is None or frames.size == 0:
            return (
                np.empty(0, dtype=np.int64),
                np.zeros(frames.size, dtype=np.int64),
            )
        starts, ends, ids = index
        if frames.size * starts.size <= _VISIBILITY_MASK_BUDGET:
            mask = (starts[None, :] <= frames[:, None]) & (
                frames[:, None] < ends[None, :]
            )
            rows, cols = np.nonzero(mask)
            counts = np.bincount(rows, minlength=frames.size)
            return ids[cols], counts
        parts = [self.visible_uids(video, int(f)) for f in frames]
        counts = np.fromiter(
            (p.size for p in parts), dtype=np.int64, count=len(parts)
        )
        total = int(counts.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64), counts
        return np.concatenate([p for p in parts if p.size]), counts

    def instance_arrays(self) -> "InstanceArrays":
        """Columnar view of every instance, indexed by uid (cached).

        Enables whole-frame vectorised operations — ground-truth boxes via
        one interpolation expression instead of per-instance
        :meth:`ObjectInstance.box_at` calls — for the detector and the
        discriminator's track matching.
        """
        arrays = self._arrays
        if arrays is None:
            instances = self.instances
            n = len(instances)
            entry = np.empty((n, 4), dtype=float)
            exit_ = np.empty((n, 4), dtype=float)
            starts = np.empty(n, dtype=np.int64)
            ends = np.empty(n, dtype=np.int64)
            class_names = self.class_names()
            class_code = {name: i for i, name in enumerate(class_names)}
            codes = np.empty(n, dtype=np.int64)
            for i, inst in enumerate(instances):
                entry[i] = inst.entry_box.as_array()
                exit_[i] = inst.exit_box.as_array()
                starts[i] = inst.start
                ends[i] = inst.end
                codes[i] = class_code[inst.class_name]
            durations = ends - starts
            arrays = InstanceArrays(
                starts=starts,
                ends=ends,
                durations=durations,
                entry=entry,
                exit=exit_,
                class_codes=codes,
                class_names=tuple(class_names),
            )
            self._arrays = arrays
        return arrays

    def boxes_at(self, uids: np.ndarray, frame) -> np.ndarray:
        """Ground-truth boxes (len(uids), 4) at ``frame``, vectorised.

        Equivalent to stacking ``instances[uid].box_at(frame)`` per uid:
        linear interpolation between the entry and exit box, with
        single-frame instances pinned at their entry box. ``frame`` may be
        a scalar or an array aligned with ``uids`` (one frame per uid).
        """
        arrays = self.instance_arrays()
        starts = arrays.starts[uids]
        denom = np.maximum(arrays.durations[uids] - 1, 1)
        t = np.clip((frame - starts) / denom, 0.0, 1.0)
        entry = arrays.entry[uids]
        return entry + (arrays.exit[uids] - entry) * t[:, None]

    def presence_mask(self, class_name: str) -> np.ndarray:
        """Boolean mask over global frames: is any instance of the class
        visible? (Used to synthesise proxy-model scores.)"""
        mask_diff = np.zeros(self.repository.total_frames + 1, dtype=np.int32)
        for inst in self.instances_of(class_name):
            mask_diff[inst.global_start] += 1
            mask_diff[inst.global_end] -= 1
        return np.cumsum(mask_diff[:-1]) > 0

    def chunk_counts(self, class_name: str, bounds: np.ndarray) -> np.ndarray:
        """Instances of a class per chunk, by global midpoint (Figure 6)."""
        bounds = np.asarray(bounds, dtype=np.int64)
        mids = np.array(
            [inst.global_midpoint for inst in self.instances_of(class_name)],
            dtype=np.int64,
        )
        if mids.size == 0:
            return np.zeros(bounds.size - 1, dtype=np.int64)
        idx = np.clip(
            np.searchsorted(bounds, mids, side="right") - 1, 0, bounds.size - 2
        )
        return np.bincount(idx, minlength=bounds.size - 1)

    def chunk_probabilities(self, class_name: str, bounds: np.ndarray) -> np.ndarray:
        """Conditional p_{ij} matrix for one class (feeds Eq. IV.1)."""
        bounds = np.asarray(bounds, dtype=np.int64)
        instances = self.instances_of(class_name)
        starts = np.array([i.global_start for i in instances], dtype=np.int64)
        ends = np.array([i.global_end for i in instances], dtype=np.int64)
        lows = np.maximum(starts[:, None], bounds[None, :-1])
        highs = np.minimum(ends[:, None], bounds[None, 1:])
        overlap = np.clip(highs - lows, 0, None).astype(float)
        widths = (bounds[1:] - bounds[:-1]).astype(float)
        return overlap / widths[None, :]

    # -- shared-memory transport ------------------------------------------

    def __reduce_ex__(self, protocol):
        """Pickle as a segment handle while published, by value otherwise.

        :class:`~repro.parallel.shm.SharedWorldStore` sets
        ``_shared_handle`` for the duration of a pool; every pickle in
        that window (task submission to workers) costs ~100 bytes
        instead of the full instance list, and unpickling attaches the
        shared segment (memoized per process). Do not take durable
        checkpoints of a *published* world — the handle dies with the
        store; the normal by-value path resumes as soon as the store
        closes.
        """
        handle = self._shared_handle
        if handle is not None:
            from repro.parallel.shm import attach_shared_world

            return (attach_shared_world, (handle,))
        return super().__reduce_ex__(protocol)

    def __getstate__(self) -> dict:
        """By-value pickling sheds derivable caches.

        The ownership columns and lazily materialized instances are
        rebuilt on demand; shipping them would double a checkpoint's
        world payload for no information.
        """
        state = dict(self.__dict__)
        state["_lazy"] = None
        state["_arrays"] = None
        state["_videos_col"] = None
        state["_global_starts_col"] = None
        return state

    def shared_columns(self) -> Tuple[Dict[str, np.ndarray], dict]:
        """Everything a worker needs to rebuild this world, as flat arrays.

        Returns ``(columns, meta)``: named numpy arrays — the
        :class:`InstanceArrays` columns, per-uid video/global-start
        columns, and each video's sorted ``(starts, ends, ids)``
        interval index — plus a small metadata dict (class names, video
        metadata). :class:`~repro.parallel.shm.SharedWorldStore` copies
        the arrays into a shared segment; :meth:`from_shared_columns`
        reverses the split from zero-copy views.
        """
        arrays = self.instance_arrays()
        videos_col, global_starts_col = self._ownership_columns()
        columns: Dict[str, np.ndarray] = {
            "starts": arrays.starts,
            "ends": arrays.ends,
            "durations": arrays.durations,
            "entry": arrays.entry,
            "exit": arrays.exit,
            "class_codes": arrays.class_codes,
            "videos": videos_col,
            "global_starts": global_starts_col,
        }
        for video, (starts, ends, ids) in self._video_index.items():
            columns[f"vidx/{video}/starts"] = starts
            columns[f"vidx/{video}/ends"] = ends
            columns[f"vidx/{video}/ids"] = ids
        meta = {
            "class_names": list(arrays.class_names),
            "videos_meta": [
                (v.name, v.num_frames, v.fps, v.width, v.height)
                for v in self.repository.videos
            ],
            "video_ids": list(self._video_index),
        }
        return columns, meta

    def content_digest(self) -> bytes:
        """16-byte digest of everything detection output depends on.

        Computed from the columnar state, so a world and its
        shared-memory attachment digest identically, and two worlds
        digest identically exactly when a detector over them produces
        identical outputs. Cross-world caches (the pool-wide
        :class:`~repro.parallel.shm.SharedDetectionCache`) use it to
        namespace their keys.
        """
        digest = self._content_digest
        if digest is None:
            import hashlib

            arrays = self.instance_arrays()
            videos_col, _ = self._ownership_columns()
            hasher = hashlib.blake2b(digest_size=16)
            hasher.update(
                repr(
                    [
                        (v.name, v.num_frames, v.fps, v.width, v.height)
                        for v in self.repository.videos
                    ]
                ).encode()
            )
            hasher.update(repr(arrays.class_names).encode())
            for column in (
                arrays.starts,
                arrays.ends,
                arrays.class_codes,
                arrays.entry,
                arrays.exit,
                videos_col,
            ):
                hasher.update(np.ascontiguousarray(column).tobytes())
            digest = self._content_digest = hasher.digest()
        return digest

    def _ownership_columns(self) -> Tuple[np.ndarray, np.ndarray]:
        """Per-uid ``video`` and ``global_start`` columns."""
        if self._videos_col is not None and self._global_starts_col is not None:
            return self._videos_col, self._global_starts_col
        instances = self.instances
        n = len(instances)
        videos = np.fromiter((i.video for i in instances), dtype=np.int64, count=n)
        global_starts = np.fromiter(
            (i.global_start for i in instances), dtype=np.int64, count=n
        )
        self._videos_col = videos
        self._global_starts_col = global_starts
        return videos, global_starts

    @classmethod
    def from_shared_columns(
        cls, columns: Dict[str, np.ndarray], meta: dict, handle
    ) -> "SyntheticWorld":
        """Rebuild a world around (typically zero-copy) column views.

        The inverse of :meth:`shared_columns`. The instance *objects*
        are not rebuilt here — :attr:`instances` materializes them per
        uid on demand — so attaching costs parsing a small header, not
        deserializing the world.
        """
        world = cls.__new__(cls)
        world.repository = VideoRepository(
            [Video(*spec) for spec in meta["videos_meta"]]
        )
        world._instances = None
        world._lazy = None
        world._by_class = None
        world._shared_handle = handle
        world._videos_col = columns["videos"]
        world._global_starts_col = columns["global_starts"]
        world._content_digest = None
        world._arrays = InstanceArrays(
            starts=columns["starts"],
            ends=columns["ends"],
            durations=columns["durations"],
            entry=columns["entry"],
            exit=columns["exit"],
            class_codes=columns["class_codes"],
            class_names=tuple(meta["class_names"]),
        )
        world._video_index = {
            video: (
                columns[f"vidx/{video}/starts"],
                columns[f"vidx/{video}/ends"],
                columns[f"vidx/{video}/ids"],
            )
            for video in meta["video_ids"]
        }
        return world

    def _instance_at(self, uid: int) -> ObjectInstance:
        """Materialize one :class:`ObjectInstance` from the columns."""
        arrays = self.instance_arrays()
        entry = arrays.entry[uid]
        exit_ = arrays.exit[uid]
        return ObjectInstance(
            uid=uid,
            class_name=arrays.class_names[int(arrays.class_codes[uid])],
            video=int(self._videos_col[uid]),
            start=int(arrays.starts[uid]),
            end=int(arrays.ends[uid]),
            entry_box=BoundingBox(
                float(entry[0]), float(entry[1]), float(entry[2]), float(entry[3])
            ),
            exit_box=BoundingBox(
                float(exit_[0]), float(exit_[1]), float(exit_[2]), float(exit_[3])
            ),
            global_start=int(self._global_starts_col[uid]),
        )


class SyntheticWorldBuilder:
    """Places instances of each class spec into a repository."""

    def __init__(self, repository: VideoRepository, rngs: RngFactory):
        self.repository = repository
        self.rngs = rngs
        self._specs: List[ClassSpec] = []

    def add_class(self, spec: ClassSpec) -> "SyntheticWorldBuilder":
        self._specs.append(spec)
        return self

    def build(self) -> SyntheticWorld:
        instances: List[ObjectInstance] = []
        uid = 0
        for spec in self._specs:
            rng = self.rngs.stream("class", spec.name)
            for inst in self._place_class(spec, rng, uid):
                instances.append(inst)
                uid += 1
        return SyntheticWorld(self.repository, instances)

    # -- internals ---------------------------------------------------------

    def _place_class(
        self, spec: ClassSpec, rng: np.random.Generator, next_uid: int
    ):
        if spec.count == 0:
            return
        total = self.repository.total_frames
        mids = self._midpoints(spec, rng, total)
        # Mean fps across videos converts second-durations to frames.
        fps = self.repository.common_fps()
        durations = lognormal_durations(
            spec.count, spec.mean_duration_s * fps, rng, spec.duration_sigma_log
        ).astype(np.int64)
        durations = np.maximum(durations, 2)
        for offset in range(spec.count):
            mid = int(mids[offset])
            video, frame = self.repository.locate(mid)
            video_frames = self.repository.videos[video].num_frames
            duration = min(int(durations[offset]), video_frames)
            start = frame - duration // 2
            start = int(np.clip(start, 0, video_frames - duration))
            end = start + duration
            entry, exit_ = self._trajectory(spec, rng, video)
            yield ObjectInstance(
                uid=next_uid + offset,
                class_name=spec.name,
                video=video,
                start=start,
                end=end,
                entry_box=entry,
                exit_box=exit_,
                global_start=self.repository.global_index(video, start),
            )

    def _midpoints(
        self, spec: ClassSpec, rng: np.random.Generator, total: int
    ) -> np.ndarray:
        kind = spec.skew[0]
        if kind == "uniform":
            mids = rng.uniform(0, total, size=spec.count)
        elif kind == "normal":
            fraction = float(spec.skew[1])
            if not 0 < fraction <= 1:
                raise DatasetError("normal skew fraction must lie in (0, 1]")
            sigma = fraction * total / (2 * _Z_95)
            mids = rng.normal(total / 2.0, sigma, size=spec.count)
        else:  # hotspots
            k = int(spec.skew[1])
            fraction = float(spec.skew[2])
            if k < 1 or not 0 < fraction <= 1:
                raise DatasetError("hotspots need k >= 1 and fraction in (0, 1]")
            centers = rng.uniform(0, total, size=k)
            sigma = fraction * total / (2 * _Z_95 * k)
            choice = rng.integers(0, k, size=spec.count)
            mids = rng.normal(centers[choice], sigma)
        return np.clip(mids, 0, total - 1).astype(np.int64)

    def _trajectory(
        self, spec: ClassSpec, rng: np.random.Generator, video: int
    ) -> Tuple[BoundingBox, BoundingBox]:
        meta = self.repository.videos[video]
        width, height = float(meta.width), float(meta.height)
        lo, hi = spec.size_range
        size_entry = rng.uniform(lo, hi)
        size_exit = size_entry * rng.uniform(0.6, 1.6)
        aspect = rng.uniform(0.5, 1.5)

        def sample_box(size: float) -> BoundingBox:
            w = size * aspect
            h = size
            cx = rng.uniform(w / 2, max(width - w / 2, w / 2 + 1))
            cy = rng.uniform(h / 2, max(height - h / 2, h / 2 + 1))
            return BoundingBox(cx - w / 2, cy - h / 2, cx + w / 2, cy + h / 2)

        entry = sample_box(size_entry)
        # Exit near the entry for slow objects, across the frame for fast:
        # a bounded random displacement keeps IoU matching meaningful.
        drift = rng.uniform(0.1, 0.9)
        target = sample_box(size_exit)
        exit_ = interpolate(entry, target, drift).clipped(width, height)
        return entry.clipped(width, height), exit_


def build_world(
    repository: VideoRepository,
    specs: Sequence[ClassSpec],
    seed: int = 0,
) -> SyntheticWorld:
    """Convenience: build a world from class specs with one seed."""
    builder = SyntheticWorldBuilder(repository, RngFactory(seed).child("world"))
    for spec in specs:
        builder.add_class(spec)
    return builder.build()
