"""Bounding-box geometry: the algebra the detector and tracker live on."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DatasetError


@dataclass(frozen=True, slots=True)
class BoundingBox:
    """An axis-aligned box in pixel coordinates, ``(x1, y1)`` top-left.

    Boxes are half-open in spirit but compared with real-valued IoU, so the
    only structural requirement is ``x2 >= x1`` and ``y2 >= y1``. Slotted:
    the detector and tracker construct these by the thousand.
    """

    x1: float
    y1: float
    x2: float
    y2: float

    def __post_init__(self) -> None:
        if self.x2 < self.x1 or self.y2 < self.y1:
            raise DatasetError(
                f"degenerate box ({self.x1}, {self.y1}, {self.x2}, {self.y2})"
            )

    @property
    def width(self) -> float:
        return self.x2 - self.x1

    @property
    def height(self) -> float:
        return self.y2 - self.y1

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> tuple[float, float]:
        return ((self.x1 + self.x2) / 2.0, (self.y1 + self.y2) / 2.0)

    def as_array(self) -> np.ndarray:
        return np.array([self.x1, self.y1, self.x2, self.y2], dtype=float)

    def iou(self, other: "BoundingBox") -> float:
        """Intersection-over-union with ``other``; 0 for disjoint boxes."""
        ix1 = max(self.x1, other.x1)
        iy1 = max(self.y1, other.y1)
        ix2 = min(self.x2, other.x2)
        iy2 = min(self.y2, other.y2)
        if ix2 <= ix1 or iy2 <= iy1:
            return 0.0
        inter = (ix2 - ix1) * (iy2 - iy1)
        union = self.area + other.area - inter
        if union <= 0:
            return 0.0
        return inter / union

    def shifted(self, dx: float, dy: float) -> "BoundingBox":
        return BoundingBox(self.x1 + dx, self.y1 + dy, self.x2 + dx, self.y2 + dy)

    def scaled(self, factor: float) -> "BoundingBox":
        """Scale about the box centre (object growing as it approaches)."""
        if factor <= 0:
            raise DatasetError("scale factor must be positive")
        cx, cy = self.center
        hw = self.width * factor / 2.0
        hh = self.height * factor / 2.0
        return BoundingBox(cx - hw, cy - hh, cx + hw, cy + hh)

    def clipped(self, width: float, height: float) -> "BoundingBox":
        """Clip to the image plane ``[0, width] x [0, height]``."""
        # Scalar min/max instead of np.clip: this sits on the detector's
        # per-detection hot path, where numpy's scalar dispatch dominates.
        x1 = min(max(float(self.x1), 0.0), float(width))
        y1 = min(max(float(self.y1), 0.0), float(height))
        x2 = min(max(float(self.x2), x1), float(width))
        y2 = min(max(float(self.y2), y1), float(height))
        return BoundingBox(x1, y1, x2, y2)

    def jittered(self, rng: np.random.Generator, scale: float) -> "BoundingBox":
        """Perturb corners by gaussian noise proportional to box size.

        Models detector localisation error; ``scale`` ≈ relative corner
        displacement (0.05 = 5% of the box dimensions).
        """
        dx = rng.normal(0.0, scale * max(self.width, 1.0), size=2)
        dy = rng.normal(0.0, scale * max(self.height, 1.0), size=2)
        x1, x2 = sorted((self.x1 + dx[0], self.x2 + dx[1]))
        y1, y2 = sorted((self.y1 + dy[0], self.y2 + dy[1]))
        return BoundingBox(x1, y1, x2, y2)


def interpolate(a: BoundingBox, b: BoundingBox, t: float) -> BoundingBox:
    """Linear interpolation between two boxes at ``t`` in [0, 1]."""
    t = min(max(float(t), 0.0), 1.0)
    return BoundingBox(
        a.x1 + (b.x1 - a.x1) * t,
        a.y1 + (b.y1 - a.y1) * t,
        a.x2 + (b.x2 - a.x2) * t,
        a.y2 + (b.y2 - a.y2) * t,
    )


def iou_matrix(boxes_a: np.ndarray, boxes_b: np.ndarray) -> np.ndarray:
    """Pairwise IoU between two (N, 4) and (M, 4) arrays of xyxy boxes."""
    boxes_a = np.asarray(boxes_a, dtype=float).reshape(-1, 4)
    boxes_b = np.asarray(boxes_b, dtype=float).reshape(-1, 4)
    ix1 = np.maximum(boxes_a[:, None, 0], boxes_b[None, :, 0])
    iy1 = np.maximum(boxes_a[:, None, 1], boxes_b[None, :, 1])
    ix2 = np.minimum(boxes_a[:, None, 2], boxes_b[None, :, 2])
    iy2 = np.minimum(boxes_a[:, None, 3], boxes_b[None, :, 3])
    inter = np.clip(ix2 - ix1, 0, None) * np.clip(iy2 - iy1, 0, None)
    area_a = (boxes_a[:, 2] - boxes_a[:, 0]) * (boxes_a[:, 3] - boxes_a[:, 1])
    area_b = (boxes_b[:, 2] - boxes_b[:, 0]) * (boxes_b[:, 3] - boxes_b[:, 1])
    union = area_a[:, None] + area_b[None, :] - inter
    with np.errstate(divide="ignore", invalid="ignore"):
        iou = np.where(union > 0, inter / union, 0.0)
    return iou
