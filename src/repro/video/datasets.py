"""The six evaluation datasets, synthesised to the paper's shape (§V-A).

Real videos are unavailable offline, so each dataset is regenerated as a
synthetic world whose *structure* matches the paper's description:

=============  =====  ======  ==========================  =================
dataset        hours  camera  chunking                    notes
=============  =====  ======  ==========================  =================
dashcam        10     moving  20-minute chunks            several drives
bdd1k          ~11    moving  1 chunk per clip (1000)     <1 minute clips
bdd_mot        ~3     moving  1 chunk per clip (1600)     200-frame clips
amsterdam      20     static  20-minute chunks (60)       urban canal cam
archie         20     static  20-minute chunks (60)       urban street cam
night_street   20     static  20-minute chunks (60)       town square cam
=============  =====  ======  ==========================  =================

Class lists follow Table I. Instance counts, durations and skew levels are
calibrated to the paper's qualitative descriptions and the five quantified
examples of Figure 6 (e.g. dashcam/bicycle: N=249, S≈14; archie/car:
N=33546, S≈1.1; amsterdam/boat: N=588, S≈1.6; night-street/person: N=2078,
S≈4.5; bdd1k/motor: N=509, S≈19). Everything scales with the ``scale``
parameter: frame counts and instance counts shrink together, preserving
instance density and therefore the savings-ratio shape, so benches can run
at ``scale=0.05`` while `REPRO_FULL=1` runs paper-scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.errors import DatasetError
from repro.utils.rng import RngFactory
from repro.video.chunks import ChunkMap, FixedDurationChunker, PerClipChunker
from repro.video.synthetic import ClassSpec, SyntheticWorld, SyntheticWorldBuilder
from repro.video.video import (
    VideoRepository,
    clip_collection_repository,
    single_camera_repository,
)


@dataclass
class Dataset:
    """A fully materialised evaluation dataset."""

    name: str
    repository: VideoRepository
    world: SyntheticWorld
    chunk_map: ChunkMap
    camera: str  # "moving" | "static"

    @property
    def classes(self) -> List[str]:
        return self.world.class_names()

    @property
    def total_frames(self) -> int:
        return self.repository.total_frames

    def gt_count(self, class_name: str) -> int:
        count = self.world.count_of(class_name)
        if count == 0:
            raise DatasetError(
                f"dataset {self.name!r} has no instances of {class_name!r}"
            )
        return count

    def skew_counts(self, class_name: str) -> np.ndarray:
        return self.world.chunk_counts(class_name, self.chunk_map.global_bounds())


def _scaled(count: int, scale: float) -> int:
    """Scale an instance count, keeping at least a handful of instances."""
    return max(int(round(count * scale)), 8)


def _moving(name: str, count: int, dur: float, skew: Tuple, scale: float) -> ClassSpec:
    return ClassSpec(
        name=name,
        count=_scaled(count, scale),
        mean_duration_s=dur,
        skew=skew,
        size_range=(30.0, 200.0),
    )


def _static(name: str, count: int, dur: float, skew: Tuple, scale: float) -> ClassSpec:
    return ClassSpec(
        name=name,
        count=_scaled(count, scale),
        mean_duration_s=dur,
        skew=skew,
        size_range=(40.0, 260.0),
    )


def build_dashcam(scale: float = 1.0, seed: int = 0, fps: float = 30.0) -> Dataset:
    """10 hours of drives; high location skew for infrastructure classes."""
    hours = 10.0 * scale
    repo = single_camera_repository("dashcam", hours, fps, segment_minutes=40.0)
    specs = [
        _moving("person", 2500, 3.0, ("hotspots", 5, 0.40), scale),
        _moving("bicycle", 249, 4.0, ("hotspots", 2, 0.08), scale),
        _moving("stop sign", 600, 2.5, ("hotspots", 6, 0.40), scale),
        _moving("traffic light", 1800, 5.0, ("hotspots", 4, 0.35), scale),
        _moving("fire hydrant", 350, 1.5, ("hotspots", 5, 0.45), scale),
        _moving("bus", 300, 4.0, ("hotspots", 3, 0.50), scale),
        _moving("truck", 700, 4.0, ("hotspots", 8, 0.70), scale),
    ]
    return _assemble(
        "dashcam", repo, specs, FixedDurationChunker(20.0 * scale), "moving", seed
    )


def build_bdd1k(scale: float = 1.0, seed: int = 0, fps: float = 30.0) -> Dataset:
    """1000 sub-minute clips, one chunk per clip (the §IV-C stress case)."""
    num_clips = max(int(round(1000 * scale)), 20)
    rngs = RngFactory(seed).child("bdd1k-clips")
    repo = clip_collection_repository(
        "bdd1k", num_clips, clip_frames=1200, fps=fps,
        frame_jitter=150, rng=rngs.generator(),
    )
    clip_scale = num_clips / 1000.0
    specs = [
        _moving("bike", 350, 3.0, ("hotspots", 12, 0.30), clip_scale),
        _moving("bus", 800, 3.5, ("hotspots", 20, 0.50), clip_scale),
        _moving("motor", 509, 3.0, ("hotspots", 6, 0.12), clip_scale),
        _moving("person", 4000, 3.0, ("hotspots", 40, 0.60), clip_scale),
        _moving("rider", 400, 3.0, ("hotspots", 10, 0.25), clip_scale),
        _moving("traffic light", 3000, 4.0, ("hotspots", 30, 0.55), clip_scale),
        _moving("traffic sign", 6000, 3.0, ("uniform",), clip_scale),
        _moving("truck", 1500, 3.5, ("hotspots", 25, 0.60), clip_scale),
    ]
    return _assemble("bdd1k", repo, specs, PerClipChunker(), "moving", seed)


def build_bdd_mot(scale: float = 1.0, seed: int = 0, fps: float = 30.0) -> Dataset:
    """1600 clips of ~200 frames with exact instance labels (§V-A)."""
    num_clips = max(int(round(1600 * scale)), 20)
    repo = clip_collection_repository("bddmot", num_clips, clip_frames=200, fps=fps)
    clip_scale = num_clips / 1600.0
    specs = [
        _moving("car", 8000, 2.5, ("hotspots", 50, 0.70), clip_scale),
        _moving("pedestrian", 3000, 2.0, ("hotspots", 30, 0.50), clip_scale),
        _moving("truck", 1200, 2.5, ("hotspots", 30, 0.60), clip_scale),
        _moving("bus", 500, 2.5, ("hotspots", 15, 0.40), clip_scale),
        _moving("bicycle", 400, 2.0, ("hotspots", 12, 0.35), clip_scale),
        _moving("rider", 350, 2.0, ("hotspots", 12, 0.35), clip_scale),
        _moving("motorcycle", 300, 2.0, ("hotspots", 8, 0.25), clip_scale),
        _moving("trailer", 60, 2.5, ("hotspots", 4, 0.20), clip_scale),
        _moving("train", 40, 3.0, ("hotspots", 2, 0.10), clip_scale),
    ]
    return _assemble("bdd_mot", repo, specs, PerClipChunker(), "moving", seed)


def build_amsterdam(scale: float = 1.0, seed: int = 0, fps: float = 30.0) -> Dataset:
    """20 hours from a static canal-side camera; boats have little skew."""
    repo = single_camera_repository("amsterdam", 20.0 * scale, fps)
    specs = [
        _static("person", 8000, 8.0, ("normal", 0.45), scale),
        _static("car", 5000, 10.0, ("normal", 0.55), scale),
        _static("bicycle", 6000, 6.0, ("normal", 0.40), scale),
        _static("boat", 588, 40.0, ("normal", 0.90), scale),
        _static("motorcycle", 150, 6.0, ("normal", 0.30), scale),
        _static("dog", 250, 5.0, ("normal", 0.35), scale),
        _static("truck", 800, 8.0, ("normal", 0.50), scale),
    ]
    return _assemble(
        "amsterdam", repo, specs, FixedDurationChunker(20.0 * scale), "static", seed
    )


def build_archie(scale: float = 1.0, seed: int = 0, fps: float = 30.0) -> Dataset:
    """20 hours of constant urban traffic; cars are everywhere (S≈1.1)."""
    repo = single_camera_repository("archie", 20.0 * scale, fps)
    specs = [
        _static("car", 33546, 6.0, ("uniform",), scale),
        _static("person", 12000, 8.0, ("normal", 0.60), scale),
        _static("bicycle", 2500, 5.0, ("normal", 0.45), scale),
        _static("bus", 900, 6.0, ("normal", 0.55), scale),
        _static("motorcycle", 250, 5.0, ("normal", 0.35), scale),
        _static("truck", 1500, 6.0, ("normal", 0.60), scale),
    ]
    return _assemble(
        "archie", repo, specs, FixedDurationChunker(20.0 * scale), "static", seed
    )


def build_night_street(scale: float = 1.0, seed: int = 0, fps: float = 30.0) -> Dataset:
    """20 hours over a town square at night; people cluster in the evening."""
    repo = single_camera_repository("night_street", 20.0 * scale, fps)
    specs = [
        _static("car", 9000, 8.0, ("normal", 0.60), scale),
        _static("person", 2078, 12.0, ("normal", 0.32), scale),
        _static("bus", 500, 7.0, ("normal", 0.50), scale),
        _static("truck", 700, 7.0, ("normal", 0.55), scale),
        _static("dog", 120, 6.0, ("normal", 0.30), scale),
        _static("motorcycle", 60, 5.0, ("normal", 0.25), scale),
    ]
    return _assemble(
        "night_street", repo, specs, FixedDurationChunker(20.0 * scale), "static", seed
    )


#: Registry of dataset builders keyed by paper name.
DATASET_BUILDERS: Dict[str, Callable[..., Dataset]] = {
    "dashcam": build_dashcam,
    "bdd1k": build_bdd1k,
    "bdd_mot": build_bdd_mot,
    "amsterdam": build_amsterdam,
    "archie": build_archie,
    "night_street": build_night_street,
}


def make_dataset(name: str, scale: float = 1.0, seed: int = 0) -> Dataset:
    """Build one of the six evaluation datasets by name."""
    try:
        builder = DATASET_BUILDERS[name]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {name!r}; choose from {sorted(DATASET_BUILDERS)}"
        ) from None
    if scale <= 0 or scale > 1.0:
        raise DatasetError("scale must lie in (0, 1]")
    return builder(scale=scale, seed=seed)


def _assemble(name, repository, specs, chunker, camera, seed) -> Dataset:
    builder = SyntheticWorldBuilder(repository, RngFactory(seed).child(name))
    for spec in specs:
        builder.add_class(spec)
    world = builder.build()
    return Dataset(
        name=name,
        repository=repository,
        world=world,
        chunk_map=chunker.chunk(repository),
        camera=camera,
    )
