"""Videos and video repositories: the addressable universe of frames.

A :class:`VideoRepository` is "the video data, either a single video or a
collection of files" of Algorithm 1's inputs. Frames are addressed two ways:

* ``(video_index, frame_index)`` — how the decoder and detector see them;
* a single *global frame index* over the concatenation of all videos — how
  chunking, sampling orders and instance placement see them.

The repository provides the bijection between the two.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.errors import DatasetError


@dataclass(frozen=True)
class Video:
    """Metadata for one video file (no pixels — this substrate is synthetic)."""

    name: str
    num_frames: int
    fps: float = 30.0
    width: int = 1920
    height: int = 1080

    def __post_init__(self) -> None:
        if self.num_frames <= 0:
            raise DatasetError(f"video {self.name!r} must have frames")
        if self.fps <= 0:
            raise DatasetError(f"video {self.name!r} must have positive fps")

    @property
    def duration_seconds(self) -> float:
        return self.num_frames / self.fps


class VideoRepository:
    """An ordered collection of videos with global frame addressing."""

    def __init__(self, videos: Sequence[Video]):
        if not videos:
            raise DatasetError("repository needs at least one video")
        self.videos: List[Video] = list(videos)
        self._offsets = np.concatenate(
            [[0], np.cumsum([v.num_frames for v in self.videos])]
        ).astype(np.int64)

    @property
    def num_videos(self) -> int:
        return len(self.videos)

    @property
    def total_frames(self) -> int:
        return int(self._offsets[-1])

    @property
    def total_hours(self) -> float:
        return sum(v.duration_seconds for v in self.videos) / 3600.0

    @property
    def offsets(self) -> np.ndarray:
        """Global frame offset of each video (length num_videos + 1)."""
        return self._offsets

    def common_fps(self) -> float:
        """A repository-level frame rate, validated against the videos.

        When every video shares one rate (the common case) that rate is
        returned exactly. Heterogeneous repositories — mixed capture
        hardware — have no single fps, so time-derived sizes (a one-second
        sequential stride, a dedup window in seconds) use the
        frame-weighted mean: the rate an average sampled frame lives at.
        """
        rates = np.array([v.fps for v in self.videos], dtype=float)
        if np.all(rates == rates[0]):
            return float(rates[0])
        weights = np.array([v.num_frames for v in self.videos], dtype=float)
        return float(np.average(rates, weights=weights))

    def global_index(self, video: int, frame: int) -> int:
        """Map (video, frame) to the global frame index."""
        self._check(video, frame)
        return int(self._offsets[video]) + int(frame)

    def locate(self, global_frame: int) -> Tuple[int, int]:
        """Map a global frame index back to (video, frame)."""
        if not 0 <= global_frame < self.total_frames:
            raise DatasetError(
                f"global frame {global_frame} outside [0, {self.total_frames})"
            )
        video = int(np.searchsorted(self._offsets, global_frame, side="right") - 1)
        return video, int(global_frame - self._offsets[video])

    def locate_many(self, global_frames: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorised :meth:`locate`."""
        frames = np.asarray(global_frames, dtype=np.int64)
        videos = np.searchsorted(self._offsets, frames, side="right") - 1
        return videos, frames - self._offsets[videos]

    def iter_videos(self) -> Iterator[Tuple[int, Video]]:
        return enumerate(self.videos)

    def _check(self, video: int, frame: int) -> None:
        if not 0 <= video < self.num_videos:
            raise DatasetError(f"video index {video} out of range")
        if not 0 <= frame < self.videos[video].num_frames:
            raise DatasetError(
                f"frame {frame} outside video {video} "
                f"({self.videos[video].num_frames} frames)"
            )


def single_camera_repository(
    name: str, hours: float, fps: float = 30.0, segment_minutes: float = 60.0
) -> VideoRepository:
    """A fixed camera recording ``hours`` of video in fixed-length files.

    Static deployments (the paper's amsterdam/archie/night-street) save
    video in fixed-duration segments; the segment length has no effect on
    sampling (chunking is separate) but keeps the file model honest.
    """
    if hours <= 0:
        raise DatasetError("hours must be positive")
    total_frames = int(round(hours * 3600 * fps))
    seg_frames = max(int(round(segment_minutes * 60 * fps)), 1)
    videos = []
    start = 0
    index = 0
    while start < total_frames:
        frames = min(seg_frames, total_frames - start)
        videos.append(Video(name=f"{name}-{index:04d}", num_frames=frames, fps=fps))
        start += frames
        index += 1
    return VideoRepository(videos)


def clip_collection_repository(
    name: str,
    num_clips: int,
    clip_frames: int,
    fps: float = 30.0,
    frame_jitter: int = 0,
    rng: np.random.Generator | None = None,
) -> VideoRepository:
    """Many short clips (the BDD-style repositories).

    ``frame_jitter`` varies clip lengths uniformly by ±jitter frames, like
    real dashcam clip datasets where clips are almost but not exactly the
    same length.
    """
    if num_clips <= 0 or clip_frames <= 0:
        raise DatasetError("clip counts and lengths must be positive")
    videos = []
    for index in range(num_clips):
        frames = clip_frames
        if frame_jitter and rng is not None:
            frames = max(1, clip_frames + int(rng.integers(-frame_jitter, frame_jitter + 1)))
        videos.append(Video(name=f"{name}-{index:05d}", num_frames=frames, fps=fps))
    return VideoRepository(videos)
