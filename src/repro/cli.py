"""Command-line interface: run queries, experiments and ablations.

Examples::

    python -m repro list-datasets
    python -m repro query --dataset dashcam --object "traffic light" \
        --limit 20 --method exsample --scale 0.05
    python -m repro compare --dataset night_street --object person \
        --recall 0.5 --scale 0.04
    python -m repro experiment fig3
    python -m repro experiment table1 --full
    python -m repro ablation policy
    python -m repro serve --dataset dashcam --workload workload.json
    python -m repro serve --dataset dashcam --listen 127.0.0.1:7070
    python -m repro fleet --dataset dashcam --workload workload.json \
        --shards 2 --placement hash_tenant
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.core.registry import searcher_specs
from repro.errors import ReproError
from repro.experiments import ablations as ablations_mod
from repro.experiments import fig2, fig3, fig4, fig5, fig6, table1
from repro.experiments.runner import default_config, sweep_methods
from repro.query.cost import CostModel
from repro.query.engine import SEARCH_METHODS, QueryEngine
from repro.query.metrics import time_to_recall
from repro.query.query import DistinctObjectQuery
from repro.query.session import BudgetExhausted, ResultFound
from repro.serving.placement import PLACEMENT_POLICIES
from repro.serving.policies import SCHEDULING_POLICIES
from repro.utils.tables import ascii_table, format_duration
from repro.video.datasets import DATASET_BUILDERS, make_dataset

_EXPERIMENTS = {
    "fig2": (fig2.Fig2Config, fig2.run, fig2.format_result),
    "fig3": (fig3.Fig3Config, fig3.run, fig3.format_result),
    "fig4": (fig4.Fig4Config, fig4.run, fig4.format_result),
    "fig5": (fig5.Fig5Config, fig5.run, fig5.format_result),
    "fig6": (fig6.Fig6Config, fig6.run, fig6.format_result),
    "table1": (table1.Table1Config, table1.run, table1.format_result),
}

_ABLATIONS = {
    "randomplus": ablations_mod.randomplus_ablation,
    "policy": ablations_mod.policy_ablation,
    "prior": ablations_mod.prior_ablation,
    "batch": ablations_mod.batch_ablation,
    "chunks": ablations_mod.chunk_count_ablation,
    "proxy-quality": ablations_mod.proxy_quality_ablation,
    "fusion": ablations_mod.fusion_crossover_ablation,
    "sequential-variance": ablations_mod.sequential_variance_ablation,
    "batch-time": ablations_mod.batch_time_ablation,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ExSample reproduction: queries, experiments, ablations.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-datasets", help="list the six evaluation datasets")

    sub.add_parser(
        "methods",
        help="list registered search methods (including plug-in registrations)",
    )

    query = sub.add_parser("query", help="run one distinct-object query")
    query.add_argument("--dataset", required=True, choices=sorted(DATASET_BUILDERS))
    query.add_argument("--object", required=True, dest="object_class",
                       help="object class to search for")
    query.add_argument("--method", default="exsample", choices=SEARCH_METHODS)
    query.add_argument("--limit", type=int, default=None)
    query.add_argument("--recall", type=float, default=None)
    query.add_argument("--scale", type=float, default=0.05)
    query.add_argument("--seed", type=int, default=0)
    query.add_argument("--detector-fps", type=float, default=20.0)
    query.add_argument(
        "--cost-budget", type=float, default=None,
        help="stop after this many seconds of modelled processing time",
    )
    query.add_argument(
        "--batch", type=int, default=None,
        help="detector batch size (§III-F); stopping points are unaffected",
    )
    query.add_argument(
        "--stream", action="store_true",
        help="print each distinct result the moment it is found",
    )
    query.add_argument(
        "--cache", default="unbounded",
        choices=("unbounded", "lru", "off", "shared"),
        help="detection memoization policy (results are unaffected)",
    )
    _add_index_flag(query)

    compare = sub.add_parser(
        "compare", help="run every method on one query and compare times"
    )
    compare.add_argument("--dataset", required=True, choices=sorted(DATASET_BUILDERS))
    compare.add_argument("--object", required=True, dest="object_class")
    compare.add_argument("--recall", type=float, default=0.5)
    compare.add_argument("--scale", type=float, default=0.05)
    compare.add_argument("--seed", type=int, default=0)
    compare.add_argument(
        "--cache", default="unbounded",
        choices=("unbounded", "lru", "off", "shared"),
        help="detection memoization policy (results are unaffected)",
    )
    compare.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for the method sweep (default: REPRO_JOBS or 1)",
    )
    _add_index_flag(compare)
    _add_shared_flags(compare)

    serve = sub.add_parser(
        "serve",
        help="replay a workload against the async server, or listen on a "
             "socket (--listen) for wire-protocol clients",
    )
    serve.add_argument("--dataset", required=True, choices=sorted(DATASET_BUILDERS))
    serve.add_argument(
        "--workload", default=None,
        help="JSON workload file: queries with arrival times "
             "(see repro.serving.workload for the format); required unless "
             "--listen is given",
    )
    serve.add_argument(
        "--listen", default=None, metavar="HOST:PORT",
        help="serve the newline-delimited JSON wire protocol on this "
             "address (port 0 binds an ephemeral port) until a client "
             "sends the shutdown op, instead of replaying a workload",
    )
    serve.add_argument("--scale", type=float, default=0.05)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--time-scale", type=float, default=0.0,
        help="stretch factor for workload arrival times; 0 (default) "
             "submits as fast as admission allows",
    )
    serve.add_argument(
        "--max-in-flight", type=int, default=8,
        help="maximum sessions stepping concurrently (admission control)",
    )
    serve.add_argument(
        "--queue-capacity", type=int, default=64,
        help="admission queue bound; beyond it submissions backpressure",
    )
    serve.add_argument(
        "--max-batch", type=int, default=256,
        help="maximum frames per fused detector call",
    )
    serve.add_argument(
        "--flush-ms", type=float, default=2.0,
        help="max milliseconds a detector request waits for batch company",
    )
    serve.add_argument(
        "--policy", default="round_robin",
        choices=sorted(SCHEDULING_POLICIES),
        help="scheduling policy for admission and batch assembly",
    )
    serve.add_argument(
        "--executor", default=None, metavar="SPEC",
        help="detector executor spec: inline, thread[:N], or "
             "process[:N|:start-method] (results are unaffected; thread/"
             "process overlap fused detection with session CPU work); "
             "default: the workload file's 'executor' key, else inline",
    )
    serve.add_argument(
        "--no-batching", action="store_true",
        help="disable cross-session batching (per-session detector calls; "
             "results are unaffected, detector call counts are not)",
    )
    serve.add_argument(
        "--cache", default="unbounded",
        choices=("unbounded", "lru", "off", "shared"),
        help="detection memoization policy (results are unaffected)",
    )
    _add_index_flag(serve)

    fleet = sub.add_parser(
        "fleet",
        help="replay a workload across a sharded fleet of server processes",
    )
    fleet.add_argument("--dataset", required=True, choices=sorted(DATASET_BUILDERS))
    fleet.add_argument(
        "--workload", required=True,
        help="JSON workload file (items may pin a 'shard' or set "
             "'pause_after'; see repro.serving.workload)",
    )
    fleet.add_argument(
        "--shards", type=int, default=2,
        help="number of shard server processes",
    )
    fleet.add_argument(
        "--placement", default="hash_tenant",
        choices=sorted(PLACEMENT_POLICIES),
        help="shard placement policy (traces are placement-independent)",
    )
    fleet.add_argument(
        "--context", default=None,
        choices=("fork", "spawn", "forkserver"),
        help="multiprocessing start method for shard processes "
             "(default: REPRO_MP_CONTEXT or the platform default)",
    )
    fleet.add_argument("--scale", type=float, default=0.05)
    fleet.add_argument("--seed", type=int, default=0)
    fleet.add_argument(
        "--time-scale", type=float, default=0.0,
        help="stretch factor for workload arrival times; 0 (default) "
             "submits as fast as admission allows",
    )
    fleet.add_argument(
        "--max-in-flight", type=int, default=8,
        help="in-flight sessions per shard (router admission limit)",
    )
    fleet.add_argument(
        "--queue-capacity", type=int, default=64,
        help="router-side admission queue bound per shard",
    )
    fleet.add_argument(
        "--policy", default="round_robin",
        choices=sorted(SCHEDULING_POLICIES),
        help="scheduling policy inside each shard server",
    )
    fleet.add_argument(
        "--executor", default=None, metavar="SPEC",
        help="detector executor spec inside each shard server: inline, "
             "thread[:N], or process[:N|:start-method] (results are "
             "unaffected); default: the workload file's 'executor' key, "
             "else inline",
    )
    fleet.add_argument(
        "--no-shared-cache", action="store_true",
        help="give each shard a private detection cache instead of the "
             "cross-process shared memo (results are unaffected)",
    )
    fleet.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="N",
        help="auto-checkpoint every session every N fulfilled steps "
             "(the crash-recovery table; a killed shard's sessions "
             "resume from their last checkpoint, redoing at most N steps)",
    )
    fleet.add_argument(
        "--max-restarts", type=int, default=2,
        help="shard relaunches before the circuit breaker takes the "
             "shard out of rotation (sessions move to survivors)",
    )
    _add_index_flag(fleet)

    index = sub.add_parser(
        "index",
        help="manage a persistent repository index (cross-query reuse)",
    )
    index_sub = index.add_subparsers(dest="index_command", required=True)

    index_build = index_sub.add_parser(
        "build",
        help="seed an index by running queries with recording attached",
    )
    index_build.add_argument("--path", required=True,
                             help="index directory (created if missing)")
    index_build.add_argument("--dataset", required=True,
                             choices=sorted(DATASET_BUILDERS))
    index_build.add_argument("--object", required=True, dest="object_class",
                             help="object class to seed knowledge for")
    index_build.add_argument("--method", default="exsample",
                             choices=SEARCH_METHODS)
    index_build.add_argument("--limit", type=int, default=10)
    index_build.add_argument(
        "--runs", type=int, default=3,
        help="seeding runs (run seeds 0..N-1); later runs warm-start from "
             "the knowledge earlier ones recorded",
    )
    index_build.add_argument("--scale", type=float, default=0.05)
    index_build.add_argument("--seed", type=int, default=0)

    index_stats = index_sub.add_parser(
        "stats", help="summarise an index directory's recorded knowledge"
    )
    index_stats.add_argument("--path", required=True)

    index_vacuum = index_sub.add_parser(
        "vacuum",
        help="fold append-only segments into one compacted store",
    )
    index_vacuum.add_argument("--path", required=True)

    experiment = sub.add_parser(
        "experiment", help="regenerate one paper table or figure"
    )
    experiment.add_argument("name", choices=sorted(_EXPERIMENTS) + ["all"])
    experiment.add_argument(
        "--full", action="store_true",
        help="paper-scale configuration (slow); default is the quick config",
    )
    experiment.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for independent runs/cells "
             "(default: REPRO_JOBS or 1; results are identical to serial)",
    )
    experiment.add_argument(
        "--cache", default=None,
        choices=("unbounded", "lru", "off", "shared"),
        help="detection-cache policy for worker-built engines "
             "(sets REPRO_CACHE; results are unaffected)",
    )
    _add_shared_flags(experiment)

    lint = sub.add_parser(
        "lint",
        help="run the repro.analysis determinism/concurrency lint suite",
    )
    lint.add_argument(
        "paths", nargs="*", default=None, metavar="PATH",
        help="files or directories to lint (default: src/repro)",
    )
    lint.add_argument(
        "--format", default="text", choices=("text", "json"),
        dest="lint_format", help="report format (json is the CI artifact)",
    )
    lint.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="baseline file of grandfathered findings "
             "(default: lint-baseline.json at the repo root if present)",
    )
    lint.add_argument(
        "--write-baseline", action="store_true",
        help="rewrite the baseline from current findings and exit 0",
    )
    lint.add_argument(
        "--stats", action="store_true",
        help="print the findings-per-rule/package table and baseline debt",
    )
    lint.add_argument(
        "--rules", default=None, metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    lint.add_argument(
        "--verbose", action="store_true",
        help="also print suppressed and baselined findings",
    )

    ablation = sub.add_parser("ablation", help="run one design-choice ablation")
    ablation.add_argument("name", choices=sorted(_ABLATIONS))
    ablation.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for independent runs (default: REPRO_JOBS or 1)",
    )
    ablation.add_argument(
        "--cache", default=None,
        choices=("unbounded", "lru", "off", "shared"),
        help="detection-cache policy for worker-built engines "
             "(sets REPRO_CACHE; results are unaffected)",
    )
    _add_shared_flags(ablation)

    return parser


def _add_index_flag(subparser) -> None:
    subparser.add_argument(
        "--index", default=None, metavar="PATH",
        help="attach a persistent repository index directory: completed "
             "queries record their knowledge, new ones warm-start from it, "
             "exact repeats replay with zero detector calls",
    )


def _add_shared_flags(subparser) -> None:
    subparser.add_argument(
        "--shared-world", action="store_true",
        help="ship synthetic worlds to workers via POSIX shared memory "
             "(one published copy, zero-copy attach) instead of "
             "re-pickling them per task; results are unaffected",
    )
    subparser.add_argument(
        "--shared-cache", action="store_true",
        help="share one detection memo across all worker processes "
             "(shorthand for --cache shared); results are unaffected",
    )


def _cmd_list_datasets(out) -> int:
    rows = []
    for name in sorted(DATASET_BUILDERS):
        dataset = make_dataset(name, scale=0.02, seed=0)
        rows.append(
            (
                name,
                dataset.camera,
                dataset.chunk_map.num_chunks,
                ", ".join(dataset.classes[:5])
                + (", ..." if len(dataset.classes) > 5 else ""),
            )
        )
    print(
        ascii_table(
            ["dataset", "camera", "chunks@2%", "classes"],
            rows,
            title="evaluation datasets (synthetic; see DESIGN.md)",
        ),
        file=out,
    )
    return 0


def _cmd_methods(out) -> int:
    rows = [(spec.name, spec.description or "-") for spec in searcher_specs()]
    print(
        ascii_table(
            ["method", "description"],
            rows,
            title="registered search methods (@register_searcher)",
        ),
        file=out,
    )
    return 0


def _cmd_query(args, out) -> int:
    dataset = make_dataset(args.dataset, scale=args.scale, seed=args.seed)
    engine = QueryEngine(
        dataset,
        cost_model=CostModel(detector_fps=args.detector_fps),
        seed=args.seed,
        detection_cache=args.cache,
        index=args.index,
    )
    if args.limit is None and args.recall is None and args.cost_budget is None:
        args.limit = 10
    query = DistinctObjectQuery(
        args.object_class,
        limit=args.limit,
        recall_target=args.recall,
        frame_budget=dataset.total_frames,
        cost_budget=args.cost_budget,
    )
    if args.stream:
        return _stream_query(engine, query, args, out)
    outcome = engine.run(query, method=args.method, batch_size=args.batch)
    print(
        f"{outcome.num_results} distinct results in "
        f"{outcome.trace.num_samples} detector frames "
        f"({format_duration(outcome.trace.total_cost)} modelled GPU time)",
        file=out,
    )
    for found in outcome.found[:10]:
        print(
            f"  video {found.video:4d} frame {found.frame:7d} "
            f"score {found.score:.2f}",
            file=out,
        )
    if outcome.num_results > 10:
        print(f"  ... and {outcome.num_results - 10} more", file=out)
    return 0


def _stream_query(engine, query, args, out) -> int:
    """Anytime execution: print results as the session discovers them."""
    session = engine.session(query, method=args.method, batch_size=args.batch)
    for event in session.stream():
        if isinstance(event, ResultFound):
            found = event.result
            print(
                f"  #{event.num_results:3d} video {found.video:4d} "
                f"frame {found.frame:7d} score {found.score:.2f} "
                f"({event.sample_index} frames sampled)",
                file=out,
            )
            if hasattr(out, "flush"):
                out.flush()
        elif isinstance(event, BudgetExhausted):
            print(
                f"done ({event.reason}): {event.num_results} distinct results "
                f"in {event.num_samples} detector frames "
                f"({format_duration(event.total_cost)} modelled GPU time)",
                file=out,
            )
    return 0


def _cmd_compare(args, out) -> int:
    _apply_parallel_env(args)
    cache = "shared" if args.shared_cache else args.cache
    dataset = make_dataset(args.dataset, scale=args.scale, seed=args.seed)
    engine = QueryEngine(
        dataset, seed=args.seed, detection_cache=cache, index=args.index
    )
    query = DistinctObjectQuery(
        args.object_class,
        recall_target=args.recall,
        frame_budget=dataset.total_frames,
    )
    rows = []
    for method, outcome in sweep_methods(engine, query, jobs=args.jobs).items():
        seconds = time_to_recall(outcome.trace, outcome.gt_count, args.recall)
        rows.append(
            (
                method,
                outcome.trace.num_samples,
                "-" if seconds is None else format_duration(seconds),
            )
        )
    print(
        ascii_table(
            ["method", "detector frames", f"time to {args.recall:.0%} recall"],
            rows,
            title=f"{args.dataset} / {args.object_class}",
        ),
        file=out,
    )
    info = engine.cache_info()
    if info is not None and (info.requests or info.size):
        # With --jobs the sweep runs in workers against engine copies; the
        # local counters then only reflect this process's share (a shared
        # cache still shows the store size every worker filled).
        print(f"detection {info}", file=out)
    return 0


def _apply_parallel_env(args) -> None:
    """Propagate the parallel-execution flags to the harnesses via env.

    The experiment modules resolve their worker count, shared-world
    setting and cache policy from the environment (so nested code,
    worker processes and benches see one set of knobs); the CLI flags
    simply set them for this process — worker pools inherit them.
    """
    if getattr(args, "jobs", None) is not None:
        os.environ["REPRO_JOBS"] = str(args.jobs)
    if getattr(args, "shared_world", False):
        os.environ["REPRO_SHARED_WORLD"] = "1"
    if getattr(args, "shared_cache", False):
        os.environ["REPRO_CACHE"] = "shared"
    elif getattr(args, "cache", None) and args.command in ("experiment", "ablation"):
        os.environ["REPRO_CACHE"] = args.cache


def _workload_problems(items, dataset, dataset_name, n_shards=None):
    """Validate workload entries against a dataset/registry up front.

    One bad item should be a clean per-item message before serving
    starts, not a traceback that abandons the sessions already in
    flight.
    """
    problems = []
    for index, item in enumerate(items):
        if item.object not in dataset.classes:
            problems.append(
                f"entry {index}: class {item.object!r} not in dataset "
                f"{dataset_name!r} (available: {dataset.classes})"
            )
        if item.method not in SEARCH_METHODS:
            problems.append(
                f"entry {index}: unknown method {item.method!r} "
                f"(available: {list(SEARCH_METHODS)})"
            )
        if item.batch_size is not None and item.batch_size < 1:
            problems.append(f"entry {index}: batch_size must be >= 1")
        if (
            n_shards is not None
            and item.shard is not None
            and item.shard >= n_shards
        ):
            problems.append(
                f"entry {index}: pins shard {item.shard} but the fleet "
                f"has {n_shards} shards"
            )
        try:
            item.query()
        except ReproError as exc:
            problems.append(f"entry {index}: {exc}")
    return problems


def _parse_listen(spec: str):
    host, sep, port = spec.rpartition(":")
    if not sep or not host:
        raise ReproError(
            f"--listen expects HOST:PORT, got {spec!r} (use port 0 for an "
            "ephemeral port)"
        )
    try:
        return host, int(port)
    except ValueError as exc:
        raise ReproError(f"--listen port must be an integer, got {port!r}") from exc


def _cmd_serve(args, out) -> int:
    """Replay a workload of timed query arrivals against a QueryServer."""
    import asyncio

    from repro.serving import ServerConfig, load_executor, load_workload, replay

    if (args.workload is None) == (args.listen is None):
        print("serve needs exactly one of --workload or --listen", file=out)
        return 1
    executor = args.executor
    if executor is None and args.workload is not None:
        executor = load_executor(args.workload)
    dataset = make_dataset(args.dataset, scale=args.scale, seed=args.seed)
    engine = QueryEngine(
        dataset, seed=args.seed, detection_cache=args.cache, index=args.index
    )
    config = ServerConfig(
        max_in_flight=args.max_in_flight,
        queue_capacity=args.queue_capacity,
        max_batch_size=args.max_batch,
        flush_latency=args.flush_ms / 1000.0,
        policy=args.policy,
        batching=not args.no_batching,
        executor=executor or "inline",
    )
    if args.listen is not None:
        from repro.serving.net import serve_forever

        host, port = _parse_listen(args.listen)

        def _announce(bound_port: int) -> None:
            print(
                f"serving {args.dataset} on {host}:{bound_port} "
                "(newline-delimited JSON; send {\"op\": \"shutdown\"} to stop)",
                file=out,
            )
            if hasattr(out, "flush"):
                out.flush()

        asyncio.run(
            serve_forever(
                engine, host=host, port=port, config=config, ready=_announce
            )
        )
        return 0
    items = load_workload(args.workload)
    if not items:
        print("workload is empty; nothing to serve", file=out)
        return 0
    problems = _workload_problems(items, dataset, args.dataset)
    if problems:
        for problem in problems:
            print(f"invalid workload: {problem}", file=out)
        return 1

    async def _run():
        server = engine.serve(config=config)
        handles = await replay(server, items, time_scale=args.time_scale)
        await server.drain()
        return server, handles

    server, handles = asyncio.run(_run())
    rows = []
    for item, handle in zip(items, handles, strict=True):
        state = handle.state
        rows.append(
            (
                handle.tenant,
                item.object,
                handle.method,
                handle.num_results if state == "finished" else "-",
                handle.num_samples,
                state,
            )
        )
    print(
        ascii_table(
            ["tenant", "object", "method", "results", "frames", "state"],
            rows,
            title=f"workload replay: {args.workload} over {args.dataset}",
        ),
        file=out,
    )
    print(server.stats().describe(), file=out)
    failed = [h for h in handles if h.state == "failed"]
    for handle in failed:
        print(
            f"FAILED {handle.tenant}/{handle.query.class_name}: "
            f"{handle.error}",
            file=out,
        )
    return 1 if failed else 0


def _cmd_fleet(args, out) -> int:
    """Replay a workload across a sharded fleet of server processes."""
    from repro.serving import (
        FleetConfig,
        ServerConfig,
        load_executor,
        load_faults,
        load_workload,
    )
    from repro.serving.fleet import run_fleet

    items = load_workload(args.workload)
    if not items:
        print("workload is empty; nothing to serve", file=out)
        return 0
    dataset = make_dataset(args.dataset, scale=args.scale, seed=args.seed)
    problems = _workload_problems(
        items, dataset, args.dataset, n_shards=args.shards
    )
    if problems:
        for problem in problems:
            print(f"invalid workload: {problem}", file=out)
        return 1
    config = FleetConfig(
        n_shards=args.shards,
        placement=args.placement,
        context=args.context,
        shared_cache=not args.no_shared_cache,
        queue_capacity=args.queue_capacity,
        server=ServerConfig(
            max_in_flight=args.max_in_flight,
            policy=args.policy,
            executor=(
                args.executor or load_executor(args.workload) or "inline"
            ),
        ),
        index=args.index,
        checkpoint_every=args.checkpoint_every,
        max_restarts=args.max_restarts,
        faults=load_faults(args.workload),
    )
    summaries, stats = run_fleet(
        dataset,
        items,
        config=config,
        engine_seed=args.seed,
        time_scale=args.time_scale,
    )
    rows = []
    for summary in summaries:
        rows.append(
            (
                summary["tenant"],
                summary["object"],
                summary["method"],
                summary["shard"],
                summary["num_results"]
                if summary["state"] == "finished"
                else "-",
                summary["num_samples"],
                summary["state"]
                + (f" (moved x{summary['migrations']})"
                   if summary["migrations"] else "")
                + (f" (recovered x{summary['recoveries']})"
                   if summary.get("recoveries") else ""),
            )
        )
    print(
        ascii_table(
            ["tenant", "object", "method", "shard", "results", "frames",
             "state"],
            rows,
            title=(
                f"fleet replay: {args.workload} over {args.dataset} "
                f"({args.shards} shards, {args.placement})"
            ),
        ),
        file=out,
    )
    print(stats.describe(), file=out)
    failed = [s for s in summaries if s["state"] == "failed"]
    for summary in failed:
        print(
            f"FAILED {summary['tenant']}/{summary['object']}: "
            f"{summary['error']}: {summary['message']}",
            file=out,
        )
    return 1 if failed else 0


def _cmd_index(args, out) -> int:
    """Manage a persistent repository index: build, stats, vacuum."""
    from repro.index import RepositoryIndex

    if args.index_command == "stats":
        print(RepositoryIndex(args.path).stats().describe(), file=out)
        return 0
    if args.index_command == "vacuum":
        stats = RepositoryIndex(args.path).vacuum()
        print("vacuum complete", file=out)
        print(stats.describe(), file=out)
        return 0
    # build: run seeding queries with recording attached; each run uses
    # the next run seed, so later runs warm-start from earlier knowledge.
    dataset = make_dataset(args.dataset, scale=args.scale, seed=args.seed)
    engine = QueryEngine(dataset, seed=args.seed, index=args.path)
    query = DistinctObjectQuery(
        args.object_class,
        limit=args.limit,
        frame_budget=dataset.total_frames,
    )
    rows = []
    for run_seed in range(args.runs):
        session = engine.session(query, method=args.method, run_seed=run_seed)
        outcome = session.run_to_completion()
        rows.append(
            (
                run_seed,
                "replayed" if session.replayed else "live",
                outcome.num_results,
                outcome.trace.num_samples,
            )
        )
    print(
        ascii_table(
            ["run seed", "mode", "results", "detector frames"],
            rows,
            title=(
                f"index build: {args.runs} x {args.object_class} "
                f"over {args.dataset}"
            ),
        ),
        file=out,
    )
    print(engine.index.stats().describe(), file=out)
    return 0


def _cmd_experiment(args, out) -> int:
    _apply_parallel_env(args)
    if args.name == "all":
        from repro.experiments.report import generate_report, render_report

        print(render_report(generate_report(full=args.full)), file=out)
        return 0
    config_cls, run, format_result = _EXPERIMENTS[args.name]
    config = config_cls.paper() if args.full else config_cls.quick()
    result = run(config)
    print(format_result(result), file=out)
    return 0


def _cmd_ablation(args, out) -> int:
    _apply_parallel_env(args)
    fn = _ABLATIONS[args.name]
    config = default_config(ablations_mod.AblationConfig)
    result = fn(config)
    # Some ablations return nested per-variant statistics; flatten for the
    # common tabular renderer.
    flat = {}
    for key, value in result.items():
        if isinstance(value, dict):
            for stat, stat_value in value.items():
                flat[f"{key}/{stat}"] = stat_value
        else:
            flat[key] = value
    print(
        ablations_mod.format_ablation(f"{args.name} ablation", flat),
        file=out,
    )
    return 0


def _cmd_lint(args, out) -> int:
    from pathlib import Path

    from repro import analysis

    root = Path.cwd()
    paths = [Path(p) for p in args.paths] if args.paths else [root / "src" / "repro"]
    if not args.paths and not paths[0].exists():
        # Running from an installed checkout layout; fall back to the
        # package's own source tree.
        paths = [Path(analysis.__file__).resolve().parent.parent]
        root = paths[0].parent.parent

    rules = None
    if args.rules:
        rules = [analysis.get_rule(c.strip()) for c in args.rules.split(",") if c.strip()]

    baseline_path = Path(args.baseline) if args.baseline else root / analysis.DEFAULT_BASELINE
    baseline = analysis.Baseline.load(baseline_path)

    result = analysis.run_lint(paths, root, rules=rules, baseline=None)

    if args.write_baseline:
        analysis.Baseline.from_findings(result.findings).save(baseline_path)
        print(f"wrote {baseline_path}", file=out)
        return 0

    result.findings = baseline.apply(result.findings)
    result.baseline_debt = baseline.debt
    if args.lint_format == "json":
        print(analysis.render_json(result), file=out)
    else:
        print(analysis.render_text(result, verbose=args.verbose), file=out)
    if args.stats:
        print(file=out)
        print(analysis.render_stats(result), file=out)
    return 0 if result.ok else 1


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """CLI entry point. Returns a process exit code."""
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    if args.command == "list-datasets":
        return _cmd_list_datasets(out)
    if args.command == "methods":
        return _cmd_methods(out)
    if args.command == "query":
        return _cmd_query(args, out)
    if args.command == "compare":
        return _cmd_compare(args, out)
    if args.command == "serve":
        return _cmd_serve(args, out)
    if args.command == "fleet":
        return _cmd_fleet(args, out)
    if args.command == "index":
        return _cmd_index(args, out)
    if args.command == "experiment":
        return _cmd_experiment(args, out)
    if args.command == "lint":
        return _cmd_lint(args, out)
    if args.command == "ablation":
        return _cmd_ablation(args, out)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
