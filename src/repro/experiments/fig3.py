"""Figure 3: the skew × duration simulation grid (§IV-B).

2000 instances are placed on a timeline with four levels of placement skew
(none, and 95% of instances within the central 1/4, 1/32, 1/256 of frames)
and four mean durations (14, 100, 700, 4900 frames). For each of the 16
cells, ExSample (128 chunks) and random sampling run repeatedly; the paper
reports the median discovery trajectories, 25-75 bands, the savings in
samples needed to reach 10/100/1000 results, and the expected trajectory of
the optimal static allocation (Eq. IV.1).

Expected shape (paper Figure 3): savings grow with skew (left to right) and
with duration (top to bottom) — from ~1x with no skew to tens of times at
skew 1/256 — and ExSample never does significantly worse than random.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.baselines.random_search import RandomSearcher
from repro.core.config import ExSampleConfig
from repro.core.sampler import ExSampleSearcher
from repro.experiments.parallel import parallel_map
from repro.experiments.runner import median_samples_to, repeated_traces
from repro.theory.instances import InstancePopulation, even_chunk_bounds
from repro.theory.optimal_weights import expected_found
from repro.theory.temporal_sim import TemporalEnvironment
from repro.utils.rng import RngFactory
from repro.utils.stats import geometric_mean
from repro.utils.tables import ascii_table


@dataclass(frozen=True)
class Fig3Config:
    num_instances: int
    total_frames: int
    num_chunks: int
    runs: int
    frame_budget: int
    skews: Tuple[Optional[float], ...] = (None, 1 / 4, 1 / 32, 1 / 256)
    durations: Tuple[int, ...] = (14, 100, 700, 4900)
    targets: Tuple[int, ...] = (10, 100, 1000)
    seed: int = 0

    @classmethod
    def quick(cls) -> "Fig3Config":
        return cls(
            num_instances=2000,
            total_frames=2_000_000,
            num_chunks=128,
            runs=3,
            frame_budget=4000,
        )

    @classmethod
    def paper(cls) -> "Fig3Config":
        return cls(
            num_instances=2000,
            total_frames=16_000_000,
            num_chunks=128,
            runs=21,
            frame_budget=10_000,
        )


@dataclass
class Fig3Cell:
    skew: Optional[float]
    duration: int
    #: median samples to reach each target, per method.
    samples_to: Dict[str, Dict[int, Optional[float]]]
    #: savings ratio random/exsample per target (None when unreachable).
    savings: Dict[int, Optional[float]]
    #: expected instances found by the optimal allocation at frame_budget.
    optimal_found: float
    median_found: Dict[str, float]


@dataclass
class Fig3Result:
    cells: List[Fig3Cell]
    config: Fig3Config

    def savings_summary(self) -> Dict[int, List[float]]:
        out: Dict[int, List[float]] = {}
        for cell in self.cells:
            for target, ratio in cell.savings.items():
                if ratio is not None:
                    out.setdefault(target, []).append(ratio)
        return out


def _make_exsample(population, bounds, rngs: RngFactory, run_idx: int) -> ExSampleSearcher:
    """Module-level (hence picklable) searcher factory for parallel runs."""
    env = TemporalEnvironment(population, bounds)
    return ExSampleSearcher(
        env, ExSampleConfig(seed=run_idx), rng=rngs.child("ex", run_idx)
    )


def _make_random(population, bounds, rngs: RngFactory, run_idx: int) -> RandomSearcher:
    env = TemporalEnvironment(population, bounds)
    return RandomSearcher(env, rng=rngs.child("rnd", run_idx))


def run_cell(
    config: Fig3Config, skew: Optional[float], duration: int
) -> Fig3Cell:
    rngs = RngFactory(config.seed).child("fig3", str(skew), duration)
    population = InstancePopulation.place(
        config.num_instances,
        config.total_frames,
        duration,
        rngs.stream("pop"),
        skew_fraction=skew,
    )
    bounds = even_chunk_bounds(config.total_frames, config.num_chunks)

    make_exsample = partial(_make_exsample, population, bounds, rngs)
    make_random = partial(_make_random, population, bounds, rngs)

    ex_traces = repeated_traces(
        make_exsample, config.runs, frame_budget=config.frame_budget
    )
    rnd_traces = repeated_traces(
        make_random, config.runs, frame_budget=config.frame_budget
    )

    samples_to: Dict[str, Dict[int, Optional[float]]] = {"exsample": {}, "random": {}}
    savings: Dict[int, Optional[float]] = {}
    for target in config.targets:
        ex_med = median_samples_to(ex_traces, target)
        rnd_med = median_samples_to(rnd_traces, target)
        samples_to["exsample"][target] = ex_med
        samples_to["random"][target] = rnd_med
        if ex_med is not None and rnd_med is not None and ex_med > 0:
            savings[target] = rnd_med / ex_med
        else:
            savings[target] = None

    p_matrix = population.chunk_probabilities(bounds)
    from repro.theory.optimal_weights import optimal_weights

    weights = optimal_weights(p_matrix, float(config.frame_budget))
    optimal_found = expected_found(p_matrix, weights, float(config.frame_budget))
    median_found = {
        "exsample": float(np.median([t.num_results for t in ex_traces])),
        "random": float(np.median([t.num_results for t in rnd_traces])),
    }
    return Fig3Cell(
        skew=skew,
        duration=duration,
        samples_to=samples_to,
        savings=savings,
        optimal_found=optimal_found,
        median_found=median_found,
    )


def _run_cell_task(config: Fig3Config, cell: Tuple[Optional[float], int]) -> Fig3Cell:
    return run_cell(config, cell[0], cell[1])


def run(config: Fig3Config) -> Fig3Result:
    """Run the 16-cell grid; cells fan out over ``REPRO_JOBS`` workers.

    Each cell is self-seeded from ``(config.seed, skew, duration)``, so the
    parallel grid is element-wise identical to the serial one. Inside a
    worker the per-cell ``repeated_traces`` stays serial (no nested pools).
    """
    grid = [
        (skew, duration)
        for duration in config.durations
        for skew in config.skews
    ]
    cells = parallel_map(partial(_run_cell_task, config), grid)
    return Fig3Result(cells=cells, config=config)


def format_result(result: Fig3Result) -> str:
    def skew_label(s: Optional[float]) -> str:
        return "none" if s is None else f"1/{int(round(1 / s))}"

    rows = []
    for cell in result.cells:
        row = [skew_label(cell.skew), cell.duration]
        for target in result.config.targets:
            ratio = cell.savings.get(target)
            row.append("-" if ratio is None else f"{ratio:.2g}x")
        row.append(f"{cell.median_found['exsample']:.0f}")
        row.append(f"{cell.median_found['random']:.0f}")
        row.append(f"{cell.optimal_found:.0f}")
        rows.append(row)
    headers = (
        ["skew", "dur"]
        + [f"sav@{t}" for t in result.config.targets]
        + ["ex found", "rnd found", "opt found"]
    )
    table = ascii_table(
        headers, rows, title="Figure 3 — savings grid (skew x duration)"
    )
    all_ratios = [
        ratio
        for ratios in result.savings_summary().values()
        for ratio in ratios
    ]
    footer = ""
    if all_ratios:
        footer = (
            f"\nsavings across reachable cells: geo-mean "
            f"{geometric_mean(all_ratios):.2f}x, "
            f"max {max(all_ratios):.2g}x, min {min(all_ratios):.2g}x "
            f"(paper: 1x to 84x, never significantly below 1x)"
        )
    return table + footer
