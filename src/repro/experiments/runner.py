"""Shared experiment machinery: scales, repeated runs, trajectory summaries.

Every experiment module follows one convention: a frozen ``*Config`` with
``quick()`` and ``paper()`` constructors, a ``run(config) -> *Result``
function, and a ``format_result`` renderer. Benches call ``run`` with
:func:`default_config`, which selects the paper-scale configuration when the
``REPRO_FULL=1`` environment variable is set and the quick configuration
otherwise. Scaling down changes absolute counts, never the comparison
structure, so the qualitative shape (who wins, roughly by how much, where
the crossovers sit) is preserved.
"""

from __future__ import annotations

import os
from typing import Callable, List, Sequence

import numpy as np

from repro.core.sampler import SearchTrace
from repro.query.metrics import interpolate_curves_on_grid
from repro.utils.stats import median_and_band


def is_full_scale() -> bool:
    """True when the user asked for paper-scale runs (REPRO_FULL=1)."""
    return os.environ.get("REPRO_FULL", "") == "1"


def default_config(config_cls):
    """Pick quick or paper configuration for an experiment config class."""
    return config_cls.paper() if is_full_scale() else config_cls.quick()


def repeated_traces(
    make_searcher: Callable[[int], "object"],
    runs: int,
    frame_budget: int | None = None,
    result_limit: int | None = None,
    distinct_real_limit: int | None = None,
    jobs: int | None = None,
) -> List[SearchTrace]:
    """Run a freshly constructed searcher ``runs`` times.

    ``make_searcher(run_index)`` must return a searcher over a *fresh*
    environment (environments are stateful across a run) and derive its
    randomness from the run index, which makes every run independent of
    execution order. ``jobs`` (default: the ``REPRO_JOBS`` environment
    variable, else 1) fans the runs out over worker processes via
    :func:`repro.experiments.parallel.parallel_traces`; traces come back
    in run order, element-wise identical to the serial loop.
    """
    from repro.experiments.parallel import parallel_traces

    return parallel_traces(
        make_searcher,
        runs,
        jobs=jobs,
        frame_budget=frame_budget,
        result_limit=result_limit,
        distinct_real_limit=distinct_real_limit,
    )


def sample_grid(max_samples: int, points: int = 60) -> np.ndarray:
    """Geometric grid of sample counts, matching the paper's log x-axes."""
    return np.unique(
        np.geomspace(1, max(max_samples, 2), num=points).astype(np.int64)
    )


def median_discovery(
    traces: Sequence[SearchTrace], grid: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Median and 25-75 band of discovery curves across runs (Fig 3 style)."""
    stacked = interpolate_curves_on_grid(traces, grid)
    return median_and_band(stacked)


def median_samples_to(
    traces: Sequence[SearchTrace], k: int
) -> float | None:
    """Median samples needed to find ``k`` distinct results across runs.

    Runs that never reach ``k`` are treated as needing more samples than
    any run that did (right-censored); if most runs fail, returns None.
    """
    values = []
    censored = 0
    for trace in traces:
        needed = trace.samples_to_results(k)
        if needed is None:
            censored += 1
        else:
            values.append(needed)
    if len(values) <= censored:
        return None
    values.extend([np.inf] * censored)
    med = float(np.median(values))
    return med if np.isfinite(med) else None


def sweep_methods(
    engine,
    query,
    methods: Sequence[str] | None = None,
    run_seed: int = 0,
    jobs: int | None = None,
    **searcher_kwargs,
):
    """Run one query under every search method; returns {method: outcome}.

    ``methods`` defaults to the live ``SEARCH_METHODS`` registry view, so a
    method registered with ``@register_searcher`` — third-party plug-ins
    included — joins every sweep (and the CLI ``compare`` table) without
    any experiment-side edits. ``jobs`` distributes the methods over
    worker processes (outcomes are identical to the serial sweep; see
    :mod:`repro.experiments.parallel`).
    """
    from repro.experiments.parallel import parallel_sweep_methods

    return parallel_sweep_methods(
        engine,
        query,
        methods=methods,
        run_seed=run_seed,
        jobs=jobs,
        **searcher_kwargs,
    )
