"""Process-parallel experiment execution with serial-identical results.

Every experiment in this library repeats deterministic, independent work:
``repeated_traces`` runs one searcher factory over N run indices,
``sweep_methods`` runs one query under every registered method, and the
figure harnesses iterate (dataset × class × trial) grids. Each unit derives
its randomness from its own index (child ``RngFactory`` streams keyed on the
run index, per-frame detector streams keyed on the frame), so units can
execute in any process in any order and produce byte-identical results —
the only thing parallelism may change is wall-clock time.

:func:`parallel_map` is the one primitive: an order-stable process-parallel
map over picklable tasks built on :class:`concurrent.futures
.ProcessPoolExecutor`. It degrades to a plain serial loop whenever

* the effective job count is 1 (the default — set ``REPRO_JOBS`` or pass
  ``jobs=``/``--jobs`` to opt in),
* there is at most one task,
* the callable does not pickle (e.g. a locally defined closure) — the
  fallback emits a ``RuntimeWarning`` naming the pickling failure, or
* it is already running inside a worker (no nested pools).

Workers mark themselves via the ``REPRO_IN_WORKER`` environment variable,
so nested ``parallel_map`` calls (a parallelised experiment whose cells
call ``repeated_traces``) stay serial instead of oversubscribing. The
pool's start method follows the platform default; pass ``context=`` (or
set ``REPRO_MP_CONTEXT``) to force ``"spawn"``/``"fork"``/
``"forkserver"`` explicitly.

Two shared-memory levers (see :mod:`repro.parallel.shm`) hang off the
pool lifecycle, both opt-in and both result-invariant:

* ``shared_world=True`` (or ``REPRO_SHARED_WORLD=1``, CLI
  ``--shared-world``) publishes every
  :class:`~repro.video.synthetic.SyntheticWorld` reachable from the
  callable and its first task (where every harness in this library
  carries its engine) into named shared-memory segments for the
  duration of the pool:
  tasks then carry ~100-byte handles instead of re-pickled worlds, and
  workers attach zero-copy views once per process. ``parallel_map``
  owns the segments — they are unlinked when the pool exits, normally
  or through a worker crash.
* ``--cache shared`` / ``REPRO_CACHE=shared`` routes every engine —
  parent-built and worker-built alike — onto one
  :class:`~repro.parallel.shm.SharedDetectionCache`, so a frame any
  process detected is a cache hit for all of them. ``parallel_map``
  hands the parent's cache to workers through the pool initializer.

Worker processes rebuild datasets/engines on demand through
:func:`dataset_engine`, a bounded process-local memo that honors the
caller's detection-cache policy — on fork-based platforms a parent that
already built the engine shares it with every worker for free.
"""

from __future__ import annotations

import io
import multiprocessing
import os
import pickle
import warnings
from concurrent.futures import ProcessPoolExecutor
from functools import lru_cache, partial
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.sampler import SearchTrace
from repro.errors import ConfigError
from repro.video.synthetic import SyntheticWorld

__all__ = [
    "clear_dataset_engines",
    "dataset_engine",
    "parallel_map",
    "parallel_sweep_methods",
    "parallel_traces",
    "resolve_context",
    "resolve_jobs",
]


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Effective worker count: ``jobs`` if given, else ``REPRO_JOBS``, else 1.

    Always 1 inside a worker process (no nested pools).
    """
    if os.environ.get("REPRO_IN_WORKER") == "1":
        return 1
    if jobs is None:
        raw = os.environ.get("REPRO_JOBS", "").strip()
        if not raw:
            return 1
        try:
            jobs = int(raw)
        except ValueError as exc:
            raise ConfigError(
                f"REPRO_JOBS must be an integer, got {raw!r}"
            ) from exc
    if jobs < 1:
        raise ConfigError(f"jobs must be >= 1, got {jobs}")
    return jobs


def resolve_context(context: Optional[str] = None):
    """Worker start method: ``context`` if given, else ``REPRO_MP_CONTEXT``.

    Returns a ``multiprocessing`` context object, or None for the
    platform default start method.
    """
    if context is None:
        context = os.environ.get("REPRO_MP_CONTEXT", "").strip() or None
    if context is None:
        return None
    try:
        return multiprocessing.get_context(context)
    except ValueError as exc:
        raise ConfigError(
            f"unknown multiprocessing start method {context!r} "
            f"(expected one of {multiprocessing.get_all_start_methods()})"
        ) from exc


def _shared_world_enabled(shared_world: Optional[bool]) -> bool:
    if shared_world is not None:
        return bool(shared_world)
    return os.environ.get("REPRO_SHARED_WORLD", "").strip() == "1"


def _shared_cache_enabled() -> bool:
    return os.environ.get("REPRO_CACHE", "").strip() == "shared"


def _init_worker(shared_cache=None) -> None:
    os.environ["REPRO_IN_WORKER"] = "1"
    if shared_cache is not None:
        # Engines built inside this worker (dataset_engine with the
        # "shared" policy) must join the parent's memo, not start their
        # own manager.
        os.environ["REPRO_CACHE"] = "shared"
        from repro.parallel.shm import adopt_shared_cache

        adopt_shared_cache(shared_cache)


class _TaskScanner(pickle.Pickler):
    """A pickling probe that records every world the pickle stream visits.

    One dry-run dump answers both pre-flight questions: *does the task
    pickle at all* (the serial-fallback check) and *which synthetic
    worlds would it ship* (the candidates for shared-memory publication).
    Worlds themselves are recorded and then stubbed out of the probe —
    they always pickle (by value or as a shared handle), so serializing
    their megabytes into a discarded buffer would be pure waste.
    """

    def __init__(self, buffer):
        super().__init__(buffer, protocol=pickle.HIGHEST_PROTOCOL)
        self.worlds: List[SyntheticWorld] = []

    def reducer_override(self, obj):
        if isinstance(obj, SyntheticWorld):
            if not any(obj is seen for seen in self.worlds):
                self.worlds.append(obj)
            return (int, ())
        return NotImplemented


def _probe_task(
    fn: Callable, item
) -> Tuple[Optional[List[SyntheticWorld]], Optional[BaseException]]:
    """Pickle ``fn`` with one representative item, once.

    Returns ``(worlds, None)`` on success or ``(None, error)`` when the
    task does not pickle. Probing one item instead of the whole task
    list keeps pre-flight peak memory at one task's worth — the full
    list is serialized exactly once, at submit time. The trade-offs are
    deliberate: an item past index 0 that uniquely fails to pickle
    surfaces as a submit-time error instead of a silent serial
    fallback, and worlds reachable only through later items are not
    published (no caller shapes tasks that way — engines ride in ``fn``
    or uniformly in every item).
    """
    scanner = _TaskScanner(io.BytesIO())
    try:
        scanner.dump((fn, item))
    except Exception as exc:
        return None, exc
    return scanner.worlds, None


def parallel_map(
    fn: Callable,
    items: Iterable,
    *,
    jobs: Optional[int] = None,
    context: Optional[str] = None,
    shared_world: Optional[bool] = None,
) -> List:
    """Order-stable map over ``items``, process-parallel when possible.

    Results arrive in item order regardless of completion order, so for a
    deterministic ``fn`` the output is element-wise identical to
    ``[fn(item) for item in items]``. Falls back to exactly that serial
    loop when parallelism is off, unavailable, or ``fn`` cannot be
    pickled (with a ``RuntimeWarning`` naming what failed); a worker
    exception propagates to the caller either way.

    ``context`` picks the worker start method (default: platform's);
    ``shared_world`` ships synthetic worlds over shared memory instead
    of re-pickling them per task (default: the ``REPRO_SHARED_WORLD``
    environment variable). The pool owns any segments it publishes:
    they are unlinked on normal completion, on error, and on worker
    crash alike.
    """
    items = list(items)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    worlds, pickle_error = _probe_task(fn, items[0])
    if pickle_error is not None:
        warnings.warn(
            f"parallel_map: running {len(items)} tasks serially because "
            f"the task does not pickle: {pickle_error!r} (fn={fn!r})",
            RuntimeWarning,
            stacklevel=2,
        )
        return [fn(item) for item in items]
    initargs = ()
    if _shared_cache_enabled():
        # Before publishing any world: if the manager fails to start,
        # nothing is published yet and nothing needs unwinding.
        from repro.parallel.shm import shared_detection_cache

        initargs = (shared_detection_cache(),)
    stores = []
    if _shared_world_enabled(shared_world) and worlds:
        from repro.parallel.shm import publish_worlds

        stores = publish_worlds(worlds)
    try:
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(items)),
            initializer=_init_worker,
            initargs=initargs,
            mp_context=resolve_context(context),
        ) as pool:
            futures = [pool.submit(fn, item) for item in items]
            return [future.result() for future in futures]
    finally:
        for store in stores:
            store.close()


# -- repeated searcher runs --------------------------------------------------


def _run_one_trace(make_searcher: Callable, limits: dict, run_idx: int):
    return make_searcher(run_idx).run(**limits)


def parallel_traces(
    make_searcher: Callable[[int], object],
    runs: int,
    *,
    jobs: Optional[int] = None,
    context: Optional[str] = None,
    shared_world: Optional[bool] = None,
    frame_budget: Optional[int] = None,
    result_limit: Optional[int] = None,
    distinct_real_limit: Optional[int] = None,
) -> List[SearchTrace]:
    """Run ``make_searcher(run_idx)`` for each run index, possibly in parallel.

    ``make_searcher`` must return a searcher over a *fresh* environment and
    derive all randomness from ``run_idx`` (the convention every experiment
    module already follows); it must be picklable — a ``functools.partial``
    over a module-level function — for the parallel path to engage.
    Results are gathered in run order, element-wise identical to the
    serial loop. ``context``/``shared_world`` pass through to
    :func:`parallel_map`.
    """
    limits = dict(
        frame_budget=frame_budget,
        result_limit=result_limit,
        distinct_real_limit=distinct_real_limit,
    )
    return parallel_map(
        partial(_run_one_trace, make_searcher, limits),
        range(runs),
        jobs=jobs,
        context=context,
        shared_world=shared_world,
    )


# -- method sweeps -----------------------------------------------------------


def _run_one_method(engine, query, run_seed: int, kwargs: dict, task):
    method, spec = task
    from repro.core.registry import SEARCH_METHODS, register_searcher

    # Each task carries its SearcherSpec: unpickling it imports the
    # factory's defining module, which on spawn-start platforms (no
    # inherited parent state) is what brings third-party plug-in modules
    # into the worker at all. Modules that self-register on import (the
    # library convention) land in the registry during that import; for
    # any that do not, re-register from the shipped spec.
    if method not in SEARCH_METHODS:
        register_searcher(
            method,
            description=spec.description,
            accepts_extras=spec.accepts_extras,
        )(spec.factory)
    return engine.run(query, method=method, run_seed=run_seed, **kwargs)


def parallel_sweep_methods(
    engine,
    query,
    methods: Optional[Sequence[str]] = None,
    run_seed: int = 0,
    jobs: Optional[int] = None,
    context: Optional[str] = None,
    shared_world: Optional[bool] = None,
    **searcher_kwargs,
) -> Dict[str, object]:
    """Run one query under every method; returns {method: outcome}.

    The parallel counterpart of :func:`repro.experiments.runner
    .sweep_methods` (which delegates here): each method runs in its own
    worker against a pickled copy of the engine — with ``shared_world``
    the engine's world travels as a shared-memory handle instead of
    being re-pickled per method. Outcomes are identical to the serial
    sweep — every run derives only from ``(engine seed, method,
    run_seed)`` — and arrive in method order. Third-party methods travel
    as their :class:`~repro.core.registry.SearcherSpec`, so workers on
    spawn-start platforms re-import/re-register them; a plug-in whose
    spec cannot be pickled degrades to the serial sweep.
    """
    from repro.core.registry import SEARCH_METHODS, searcher_spec

    chosen = tuple(methods) if methods is not None else tuple(SEARCH_METHODS)
    tasks = [(method, searcher_spec(method)) for method in chosen]
    outcomes = parallel_map(
        partial(_run_one_method, engine, query, run_seed, searcher_kwargs),
        tasks,
        jobs=jobs,
        context=context,
        shared_world=shared_world,
    )
    return dict(zip(chosen, outcomes, strict=True))


# -- process-local dataset/engine memo ---------------------------------------


#: Distinct (dataset, engine) pairs kept alive per process. Figure
#: harnesses sweep at most the six evaluation datasets at one scale, so a
#: handful of slots covers every real workload while a long multi-dataset
#: sweep can no longer pin one unbounded detection cache per pair forever.
_ENGINE_MEMO_SLOTS = 8


def dataset_engine(name: str, scale: float, seed: int, cache: Optional[str] = None):
    """A process-local ``(dataset, engine)`` for the given parameters.

    Workers use this to amortise dataset construction across their tasks;
    on fork-based platforms (Linux) a parent that called it before fanning
    out shares the built objects with every worker through copy-on-write
    memory.

    ``cache`` is the engine's detection-cache policy (``"unbounded"``,
    ``"lru"``, ``"off"``, ``"shared"``); when omitted it resolves from
    the ``REPRO_CACHE`` environment variable — which the CLI sets from
    ``--cache``/``--shared-cache`` and pool workers inherit — so the
    user's policy reaches worker-built engines instead of silently
    reverting to the default. The policy is part of the memo key: the
    memo is bounded (:data:`_ENGINE_MEMO_SLOTS` entries, LRU) and
    :func:`clear_dataset_engines` empties it on demand.
    """
    if cache is None:
        cache = os.environ.get("REPRO_CACHE", "").strip() or "unbounded"
    return _dataset_engine(name, scale, seed, cache)


@lru_cache(maxsize=_ENGINE_MEMO_SLOTS)
def _dataset_engine(name: str, scale: float, seed: int, cache: str):
    from repro.query.engine import QueryEngine
    from repro.video.datasets import make_dataset

    dataset = make_dataset(name, scale=scale, seed=seed)
    return dataset, QueryEngine(dataset, seed=seed, detection_cache=cache)


def clear_dataset_engines() -> None:
    """Drop this process's ``(dataset, engine)`` memo.

    Frees the datasets and their detection caches between sweeps (pool
    teardown, long-lived services); the next :func:`dataset_engine` call
    rebuilds from scratch.
    """
    _dataset_engine.cache_clear()
