"""Process-parallel experiment execution with serial-identical results.

Every experiment in this library repeats deterministic, independent work:
``repeated_traces`` runs one searcher factory over N run indices,
``sweep_methods`` runs one query under every registered method, and the
figure harnesses iterate (dataset × class × trial) grids. Each unit derives
its randomness from its own index (child ``RngFactory`` streams keyed on the
run index, per-frame detector streams keyed on the frame), so units can
execute in any process in any order and produce byte-identical results —
the only thing parallelism may change is wall-clock time.

:func:`parallel_map` is the one primitive: an order-stable process-parallel
map over picklable tasks built on :class:`concurrent.futures
.ProcessPoolExecutor`. It degrades to a plain serial loop whenever

* the effective job count is 1 (the default — set ``REPRO_JOBS`` or pass
  ``jobs=``/``--jobs`` to opt in),
* there is at most one task,
* the callable does not pickle (e.g. a locally defined closure), or
* it is already running inside a worker (no nested pools).

Workers mark themselves via the ``REPRO_IN_WORKER`` environment variable,
so nested ``parallel_map`` calls (a parallelised experiment whose cells
call ``repeated_traces``) stay serial instead of oversubscribing.

Worker processes rebuild datasets/engines on demand through
:func:`dataset_engine`, a process-local memo — on fork-based platforms a
parent that already built the engine shares it with every worker for free,
and within one worker the engine's detection cache accumulates across that
worker's tasks exactly as it does serially.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from functools import lru_cache, partial
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.core.sampler import SearchTrace
from repro.errors import ConfigError

__all__ = [
    "dataset_engine",
    "parallel_map",
    "parallel_sweep_methods",
    "parallel_traces",
    "resolve_jobs",
]


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Effective worker count: ``jobs`` if given, else ``REPRO_JOBS``, else 1.

    Always 1 inside a worker process (no nested pools).
    """
    if os.environ.get("REPRO_IN_WORKER") == "1":
        return 1
    if jobs is None:
        raw = os.environ.get("REPRO_JOBS", "").strip()
        if not raw:
            return 1
        try:
            jobs = int(raw)
        except ValueError as exc:
            raise ConfigError(
                f"REPRO_JOBS must be an integer, got {raw!r}"
            ) from exc
    if jobs < 1:
        raise ConfigError(f"jobs must be >= 1, got {jobs}")
    return jobs


def _init_worker() -> None:
    os.environ["REPRO_IN_WORKER"] = "1"


def _is_picklable(obj: object) -> bool:
    try:
        pickle.dumps(obj)
        return True
    except Exception:
        return False


def parallel_map(
    fn: Callable, items: Iterable, *, jobs: Optional[int] = None
) -> List:
    """Order-stable map over ``items``, process-parallel when possible.

    Results arrive in item order regardless of completion order, so for a
    deterministic ``fn`` the output is element-wise identical to
    ``[fn(item) for item in items]``. Falls back to exactly that serial
    loop when parallelism is off, unavailable, or ``fn`` cannot be
    pickled; a worker exception propagates to the caller either way.
    """
    items = list(items)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(items) <= 1 or not _is_picklable((fn, items)):
        return [fn(item) for item in items]
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(items)), initializer=_init_worker
    ) as pool:
        futures = [pool.submit(fn, item) for item in items]
        return [future.result() for future in futures]


# -- repeated searcher runs --------------------------------------------------


def _run_one_trace(make_searcher: Callable, limits: dict, run_idx: int):
    return make_searcher(run_idx).run(**limits)


def parallel_traces(
    make_searcher: Callable[[int], object],
    runs: int,
    *,
    jobs: Optional[int] = None,
    frame_budget: Optional[int] = None,
    result_limit: Optional[int] = None,
    distinct_real_limit: Optional[int] = None,
) -> List[SearchTrace]:
    """Run ``make_searcher(run_idx)`` for each run index, possibly in parallel.

    ``make_searcher`` must return a searcher over a *fresh* environment and
    derive all randomness from ``run_idx`` (the convention every experiment
    module already follows); it must be picklable — a ``functools.partial``
    over a module-level function — for the parallel path to engage.
    Results are gathered in run order, element-wise identical to the
    serial loop.
    """
    limits = dict(
        frame_budget=frame_budget,
        result_limit=result_limit,
        distinct_real_limit=distinct_real_limit,
    )
    return parallel_map(
        partial(_run_one_trace, make_searcher, limits), range(runs), jobs=jobs
    )


# -- method sweeps -----------------------------------------------------------


def _run_one_method(engine, query, run_seed: int, kwargs: dict, task):
    method, spec = task
    from repro.core.registry import SEARCH_METHODS, register_searcher

    # Each task carries its SearcherSpec: unpickling it imports the
    # factory's defining module, which on spawn-start platforms (no
    # inherited parent state) is what brings third-party plug-in modules
    # into the worker at all. Modules that self-register on import (the
    # library convention) land in the registry during that import; for
    # any that do not, re-register from the shipped spec.
    if method not in SEARCH_METHODS:
        register_searcher(
            method,
            description=spec.description,
            accepts_extras=spec.accepts_extras,
        )(spec.factory)
    return engine.run(query, method=method, run_seed=run_seed, **kwargs)


def parallel_sweep_methods(
    engine,
    query,
    methods: Optional[Sequence[str]] = None,
    run_seed: int = 0,
    jobs: Optional[int] = None,
    **searcher_kwargs,
) -> Dict[str, object]:
    """Run one query under every method; returns {method: outcome}.

    The parallel counterpart of :func:`repro.experiments.runner
    .sweep_methods` (which delegates here): each method runs in its own
    worker against a pickled copy of the engine. Outcomes are identical to
    the serial sweep — every run derives only from ``(engine seed, method,
    run_seed)`` — and arrive in method order. Third-party methods travel
    as their :class:`~repro.core.registry.SearcherSpec`, so workers on
    spawn-start platforms re-import/re-register them; a plug-in whose
    spec cannot be pickled degrades to the serial sweep.
    """
    from repro.core.registry import SEARCH_METHODS, searcher_spec

    chosen = tuple(methods) if methods is not None else tuple(SEARCH_METHODS)
    tasks = [(method, searcher_spec(method)) for method in chosen]
    outcomes = parallel_map(
        partial(_run_one_method, engine, query, run_seed, searcher_kwargs),
        tasks,
        jobs=jobs,
    )
    return dict(zip(chosen, outcomes))


# -- process-local dataset/engine memo ---------------------------------------


@lru_cache(maxsize=None)
def dataset_engine(name: str, scale: float, seed: int):
    """A process-local ``(dataset, engine)`` for the given parameters.

    Workers use this to amortise dataset construction across their tasks;
    on fork-based platforms (Linux) a parent that called it before fanning
    out shares the built objects with every worker through copy-on-write
    memory. The engine carries the default unbounded detection cache, so
    repeated tasks in one process also share detections.
    """
    from repro.query.engine import QueryEngine
    from repro.video.datasets import make_dataset

    dataset = make_dataset(name, scale=scale, seed=seed)
    return dataset, QueryEngine(dataset, seed=seed)
