"""Figure 5: time-savings ratio ExSample vs random per query (§V-C).

For every dataset × class, both methods run to 90% recall (capped by a
frame budget); the savings ratio at recall r is

    time_random(r) / time_exsample(r)

(neither method has an upfront cost, so time and samples are proportional).
The paper's summary statistics this harness checks: max ≈ 6x, worst ≈ 0.75x,
geometric mean ≈ 1.9x across all bars, 0.9-percentile ≈ 3.7x, 0.1-percentile
≈ 1.2x.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.experiments.parallel import dataset_engine, parallel_map
from repro.experiments.table1 import QUICK_CLASSES
from repro.query.metrics import savings_ratio
from repro.query.query import DistinctObjectQuery
from repro.utils.stats import geometric_mean
from repro.utils.tables import ascii_table


@dataclass(frozen=True)
class Fig5Config:
    datasets: Tuple[str, ...]
    scale: float
    recalls: Tuple[float, ...] = (0.1, 0.5, 0.9)
    trials: int = 2
    seed: int = 0
    max_classes: Optional[int] = 4

    @classmethod
    def quick(cls) -> "Fig5Config":
        return cls(
            datasets=(
                "dashcam",
                "bdd1k",
                "bdd_mot",
                "amsterdam",
                "archie",
                "night_street",
            ),
            scale=0.04,
            trials=2,
        )

    @classmethod
    def paper(cls) -> "Fig5Config":
        return cls(
            datasets=(
                "dashcam",
                "bdd1k",
                "bdd_mot",
                "amsterdam",
                "archie",
                "night_street",
            ),
            scale=1.0,
            trials=5,
            max_classes=None,
        )


@dataclass
class Fig5Bar:
    dataset: str
    class_name: str
    gt_count: int
    #: median savings ratio per recall level (None = target unreached).
    savings: Dict[float, Optional[float]]


@dataclass
class Fig5Result:
    bars: List[Fig5Bar]
    config: Fig5Config

    def ratios_at(self, recall: float) -> List[float]:
        return [
            bar.savings[recall]
            for bar in self.bars
            if bar.savings.get(recall) is not None
        ]

    def geo_mean_all(self) -> float:
        all_ratios = [
            ratio
            for recall in self.config.recalls
            for ratio in self.ratios_at(recall)
        ]
        return geometric_mean(all_ratios) if all_ratios else float("nan")


def _run_trial(
    scale: float,
    seed: int,
    recalls: Tuple[float, ...],
    task: Tuple[str, str, int],
) -> Dict[float, Optional[float]]:
    """One (dataset, class, trial) unit: ExSample vs random savings ratios.

    Module-level and self-contained (the engine is resolved through the
    process-local :func:`dataset_engine` memo) so trials can run in any
    worker; each trial depends only on ``(seed, class, trial)``, never on
    execution order.
    """
    ds_name, class_name, trial = task
    dataset, engine = dataset_engine(ds_name, scale, seed)
    query = DistinctObjectQuery(
        class_name,
        recall_target=max(recalls),
        frame_budget=dataset.total_frames // 2,
    )
    ex = engine.run(query, method="exsample", run_seed=trial)
    rnd = engine.run(query, method="random", run_seed=trial)
    return {
        recall: savings_ratio(rnd.trace, ex.trace, ex.gt_count, recall, mode="time")
        for recall in recalls
    }


def run(config: Fig5Config) -> Fig5Result:
    # Enumerate every (dataset, class, trial) unit up front, then fan the
    # flat list out over workers; datasets built here pre-warm the
    # process-local memo the workers resolve through.
    bar_keys: List[Tuple[str, str, int]] = []
    tasks: List[Tuple[str, str, int]] = []
    for ds_name in config.datasets:
        dataset, _ = dataset_engine(ds_name, config.scale, config.seed)
        for class_name in _select_classes(ds_name, dataset.classes, config):
            bar_keys.append((ds_name, class_name, dataset.gt_count(class_name)))
            tasks.extend(
                (ds_name, class_name, trial) for trial in range(config.trials)
            )
    results = parallel_map(
        partial(_run_trial, config.scale, config.seed, config.recalls), tasks
    )
    by_bar: Dict[Tuple[str, str], Dict[float, List[float]]] = {}
    for (ds_name, class_name, _trial), ratios in zip(tasks, results, strict=True):
        per_recall = by_bar.setdefault(
            (ds_name, class_name), {r: [] for r in config.recalls}
        )
        for recall, ratio in ratios.items():
            if ratio is not None:
                per_recall[recall].append(ratio)
    bars = [
        Fig5Bar(
            dataset=ds_name,
            class_name=class_name,
            gt_count=gt_count,
            savings={
                r: (float(np.median(v)) if v else None)
                for r, v in by_bar[(ds_name, class_name)].items()
            },
        )
        for ds_name, class_name, gt_count in bar_keys
    ]
    return Fig5Result(bars=bars, config=config)


def _select_classes(ds_name: str, available: List[str], config: Fig5Config):
    if config.max_classes is None:
        return available
    preferred = [c for c in QUICK_CLASSES.get(ds_name, ()) if c in available]
    rest = [c for c in available if c not in preferred]
    return (preferred + rest)[: config.max_classes]


def format_result(result: Fig5Result) -> str:
    recalls = result.config.recalls
    rows = []
    sort_recall = 0.5 if 0.5 in recalls else recalls[0]
    ordered = sorted(
        result.bars,
        key=lambda b: -(b.savings.get(sort_recall) or 0.0),
    )
    for bar in ordered:
        cells = [bar.dataset, bar.class_name, bar.gt_count]
        for recall in recalls:
            ratio = bar.savings.get(recall)
            cells.append("-" if ratio is None else f"{ratio:.2f}x")
        rows.append(cells)
    headers = ["dataset", "category", "N"] + [
        f"sav@{r}" for r in recalls
    ]
    table = ascii_table(
        headers, rows, title="Figure 5 — ExSample vs random savings per query"
    )
    lines = [table, ""]
    for recall in recalls:
        ratios = result.ratios_at(recall)
        if not ratios:
            continue
        lines.append(
            f"recall {recall}: geo-mean {geometric_mean(ratios):.2f}x  "
            f"max {max(ratios):.2f}x  min {min(ratios):.2f}x  "
            f"p90 {np.percentile(ratios, 90):.2f}x  "
            f"p10 {np.percentile(ratios, 10):.2f}x"
        )
    lines.append(
        f"overall geo-mean {result.geo_mean_all():.2f}x "
        "(paper: 1.9x geo-mean, max ~6x, min ~0.75x)"
    )
    return "\n".join(lines)
