"""Table I: proxy scan time vs ExSample time-to-recall (§V-B).

For every dataset and object class, compare

* the time a proxy-based approach spends *just scoring* the dataset
  (``total_frames / 100 fps`` — before it can return a single result), with
* the time ExSample needs to reach 10% / 50% / 90% of all distinct
  instances (sampling at 20 fps with no upfront cost).

The paper's headline finding: "Across all queries and datasets, it is
cheaper to reach 90% of instances using ExSample sampling than it is to scan
and score frames prior to sampling, and much easier to reach 10% and 50%."
The harness reports each row plus the count of rows violating that relation
(expected: 0, or nearly so at small scales).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Dict, List, Optional, Tuple

from repro.experiments.parallel import dataset_engine, parallel_map
from repro.query.cost import CostModel
from repro.query.metrics import time_to_recall
from repro.query.query import DistinctObjectQuery
from repro.utils.tables import ascii_table, format_duration

#: Classes evaluated per dataset in quick mode (representative subset,
#: including every Figure 6 exemplar). Full mode uses all classes.
QUICK_CLASSES: Dict[str, Tuple[str, ...]] = {
    "dashcam": ("bicycle", "traffic light", "person", "bus"),
    "bdd1k": ("motor", "traffic light", "person", "truck"),
    "bdd_mot": ("car", "pedestrian", "bus", "motorcycle"),
    "amsterdam": ("boat", "bicycle", "person", "car"),
    "archie": ("car", "person", "bicycle", "bus"),
    "night_street": ("person", "car", "bus", "truck"),
}


@dataclass(frozen=True)
class Table1Config:
    datasets: Tuple[str, ...]
    scale: float
    recalls: Tuple[float, ...] = (0.1, 0.5, 0.9)
    seed: int = 0
    max_classes: Optional[int] = 4

    @classmethod
    def quick(cls) -> "Table1Config":
        return cls(
            datasets=(
                "dashcam",
                "bdd1k",
                "bdd_mot",
                "amsterdam",
                "archie",
                "night_street",
            ),
            scale=0.04,
        )

    @classmethod
    def paper(cls) -> "Table1Config":
        return cls(
            datasets=(
                "dashcam",
                "bdd1k",
                "bdd_mot",
                "amsterdam",
                "archie",
                "night_street",
            ),
            scale=1.0,
            max_classes=None,
        )


@dataclass
class Table1Row:
    dataset: str
    class_name: str
    scan_seconds: float
    time_to: Dict[float, Optional[float]]
    gt_count: int

    def beats_scan_at(self, recall: float) -> Optional[bool]:
        t = self.time_to.get(recall)
        if t is None:
            return None
        return t < self.scan_seconds


@dataclass
class Table1Result:
    rows: List[Table1Row]
    config: Table1Config

    def violations(self, recall: float = 0.9) -> int:
        """Rows where ExSample failed to beat the proxy scan at ``recall``."""
        return sum(1 for row in self.rows if row.beats_scan_at(recall) is False)


def _run_row(
    scale: float,
    seed: int,
    recalls: Tuple[float, ...],
    task: Tuple[str, str],
) -> Table1Row:
    """One (dataset, class) table row — a picklable parallel unit."""
    ds_name, class_name = task
    dataset, engine = dataset_engine(ds_name, scale, seed)
    query = DistinctObjectQuery(
        class_name,
        recall_target=max(recalls),
        frame_budget=dataset.total_frames,
    )
    outcome = engine.run(query, method="exsample")
    return Table1Row(
        dataset=ds_name,
        class_name=class_name,
        scan_seconds=CostModel().scan_cost(dataset.total_frames),
        time_to={
            recall: time_to_recall(outcome.trace, outcome.gt_count, recall)
            for recall in recalls
        },
        gt_count=outcome.gt_count,
    )


def run(config: Table1Config) -> Table1Result:
    tasks: List[Tuple[str, str]] = []
    for ds_name in config.datasets:
        dataset, _ = dataset_engine(ds_name, config.scale, config.seed)
        tasks.extend(
            (ds_name, class_name)
            for class_name in _select_classes(ds_name, dataset.classes, config)
        )
    rows = parallel_map(
        partial(_run_row, config.scale, config.seed, config.recalls), tasks
    )
    return Table1Result(rows=rows, config=config)


def _select_classes(ds_name: str, available: List[str], config: Table1Config):
    if config.max_classes is None:
        return available
    preferred = [
        c for c in QUICK_CLASSES.get(ds_name, ()) if c in available
    ]
    rest = [c for c in available if c not in preferred]
    return (preferred + rest)[: config.max_classes]


def format_result(result: Table1Result) -> str:
    recalls = result.config.recalls
    table_rows = []
    for row in result.rows:
        cells = [
            row.dataset,
            format_duration(row.scan_seconds),
            row.class_name,
            row.gt_count,
        ]
        for recall in recalls:
            t = row.time_to.get(recall)
            cells.append("-" if t is None else format_duration(t))
        table_rows.append(cells)
    headers = ["dataset", "proxy scan", "category", "N"] + [
        f"{int(r * 100)}%" for r in recalls
    ]
    table = ascii_table(
        headers,
        table_rows,
        title="Table I — proxy scan time vs ExSample time to recall",
    )
    v = result.violations(max(recalls))
    footer = (
        f"\nrows where ExSample@{int(max(recalls) * 100)}% was *not* cheaper "
        f"than the proxy scan: {v} / {len(result.rows)} (paper: 0)"
    )
    return table + footer
