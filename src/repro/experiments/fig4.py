"""Figure 4: varying the number of chunks for a fixed workload (§IV-C).

Fixed population (skew 1/32, mean duration 700 frames — the third row/third
column of Figure 3) while the chunk count M sweeps 1 → 1024. The paper's
findings this harness reproduces:

* more chunks steepen the *optimal-allocation* curve (finer-grained skew);
* ExSample's realised curve tracks the optimum closely for small/medium M
  but falls behind at M=1024 (it must spend ~M samples just surveying);
* every chunked configuration beats random, but benefits are non-monotonic
  in M.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import List, Tuple

import numpy as np

from repro.baselines.random_search import RandomSearcher
from repro.core.config import ExSampleConfig
from repro.core.sampler import ExSampleSearcher
from repro.experiments.runner import median_discovery, repeated_traces, sample_grid
from repro.theory.instances import InstancePopulation, even_chunk_bounds
from repro.theory.optimal_weights import optimal_curve
from repro.theory.temporal_sim import TemporalEnvironment
from repro.utils.rng import RngFactory
from repro.utils.tables import ascii_table, sparkline


@dataclass(frozen=True)
class Fig4Config:
    num_instances: int
    total_frames: int
    mean_duration: int
    skew: float
    chunk_counts: Tuple[int, ...]
    runs: int
    frame_budget: int
    seed: int = 0

    @classmethod
    def quick(cls) -> "Fig4Config":
        return cls(
            num_instances=2000,
            total_frames=2_000_000,
            mean_duration=700,
            skew=1 / 32,
            chunk_counts=(1, 2, 16, 128, 1024),
            runs=3,
            frame_budget=8000,
        )

    @classmethod
    def paper(cls) -> "Fig4Config":
        return cls(
            num_instances=2000,
            total_frames=16_000_000,
            mean_duration=700,
            skew=1 / 32,
            chunk_counts=(1, 2, 16, 128, 1024),
            runs=21,
            frame_budget=30_000,
        )


@dataclass
class Fig4Curve:
    num_chunks: int
    grid: np.ndarray
    exsample_median: np.ndarray
    exsample_low: np.ndarray
    exsample_high: np.ndarray
    optimal_expected: np.ndarray

    def final_found(self) -> float:
        return float(self.exsample_median[-1])

    def optimal_final(self) -> float:
        return float(self.optimal_expected[-1])


@dataclass
class Fig4Result:
    curves: List[Fig4Curve]
    random_median: np.ndarray
    grid: np.ndarray
    config: Fig4Config


def _make_exsample(
    population, bounds, rngs: RngFactory, num_chunks: int, run_idx: int
) -> ExSampleSearcher:
    """Module-level (hence picklable) searcher factory for parallel runs."""
    env = TemporalEnvironment(population, bounds)
    return ExSampleSearcher(
        env,
        ExSampleConfig(seed=run_idx),
        rng=rngs.child("ex", num_chunks, run_idx),
    )


def _make_random(population, rngs: RngFactory, run_idx: int) -> RandomSearcher:
    env = TemporalEnvironment.with_even_chunks(population, 1)
    return RandomSearcher(env, rng=rngs.child("rnd", run_idx))


def run(config: Fig4Config) -> Fig4Result:
    rngs = RngFactory(config.seed).child("fig4")
    population = InstancePopulation.place(
        config.num_instances,
        config.total_frames,
        config.mean_duration,
        rngs.stream("pop"),
        skew_fraction=config.skew,
    )
    grid = sample_grid(config.frame_budget, points=24)
    curves: List[Fig4Curve] = []
    for num_chunks in config.chunk_counts:
        bounds = even_chunk_bounds(config.total_frames, num_chunks)

        traces = repeated_traces(
            partial(_make_exsample, population, bounds, rngs, num_chunks),
            config.runs,
            frame_budget=config.frame_budget,
        )
        median, low, high = median_discovery(traces, grid)
        p_matrix = population.chunk_probabilities(bounds)
        # Coarse optimal curve: solving per grid point is the dominant cost,
        # so evaluate on a thinned grid and interpolate.
        thin = grid[:: max(len(grid) // 8, 1)]
        optimal_thin = optimal_curve(p_matrix, thin.astype(float))
        optimal = np.interp(grid, thin, optimal_thin)
        curves.append(
            Fig4Curve(
                num_chunks=num_chunks,
                grid=grid,
                exsample_median=median,
                exsample_low=low,
                exsample_high=high,
                optimal_expected=optimal,
            )
        )

    random_traces = repeated_traces(
        partial(_make_random, population, rngs),
        config.runs,
        frame_budget=config.frame_budget,
    )
    random_median, _, _ = median_discovery(random_traces, grid)
    return Fig4Result(
        curves=curves, random_median=random_median, grid=grid, config=config
    )


def format_result(result: Fig4Result) -> str:
    rows = []
    for curve in result.curves:
        rows.append(
            (
                curve.num_chunks,
                f"{curve.final_found():.0f}",
                f"{curve.optimal_final():.0f}",
                sparkline(curve.exsample_median, width=30),
            )
        )
    rows.append(
        (
            "random",
            f"{result.random_median[-1]:.0f}",
            "-",
            sparkline(result.random_median, width=30),
        )
    )
    table = ascii_table(
        ["chunks", "found (median)", "optimal E[found]", "trajectory"],
        rows,
        title=(
            f"Figure 4 — chunk-count sweep "
            f"(budget {result.config.frame_budget} samples)"
        ),
    )
    return table
