"""One-shot regeneration of every paper artifact into a single report.

``generate_report()`` runs each experiment harness (quick configurations by
default, paper-scale under ``REPRO_FULL=1``) and concatenates the formatted
artifacts — the programmatic equivalent of running the whole benchmark
suite, usable from the CLI (``python -m repro experiment all``) or from a
notebook.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.experiments import fig2, fig3, fig4, fig5, fig6, table1
from repro.experiments.runner import is_full_scale
from repro.utils.timer import Timer

#: artifact name -> (config class, run, format)
ARTIFACTS: Dict[str, Tuple[type, Callable, Callable]] = {
    "fig2": (fig2.Fig2Config, fig2.run, fig2.format_result),
    "fig3": (fig3.Fig3Config, fig3.run, fig3.format_result),
    "fig4": (fig4.Fig4Config, fig4.run, fig4.format_result),
    "table1": (table1.Table1Config, table1.run, table1.format_result),
    "fig5": (fig5.Fig5Config, fig5.run, fig5.format_result),
    "fig6": (fig6.Fig6Config, fig6.run, fig6.format_result),
}


@dataclass
class ArtifactReport:
    name: str
    text: str
    seconds: float


def generate_report(
    names: Optional[List[str]] = None,
    full: Optional[bool] = None,
) -> List[ArtifactReport]:
    """Run the selected artifacts (all by default) and return their texts."""
    if full is None:
        full = is_full_scale()
    selected = names or list(ARTIFACTS)
    reports: List[ArtifactReport] = []
    for name in selected:
        config_cls, run, format_result = ARTIFACTS[name]
        config = config_cls.paper() if full else config_cls.quick()
        with Timer() as timer:
            result = run(config)
        reports.append(
            ArtifactReport(
                name=name,
                text=format_result(result),
                seconds=timer.elapsed,
            )
        )
    return reports


def render_report(reports: List[ArtifactReport]) -> str:
    """Concatenate artifact reports with headers into one document."""
    blocks = []
    for report in reports:
        rule = "=" * 72
        blocks.append(
            f"{rule}\n{report.name}  (generated in {report.seconds:.1f}s)\n{rule}\n"
            f"{report.text}"
        )
    return "\n\n".join(blocks)


def write_report(
    path: "str | pathlib.Path",
    names: Optional[List[str]] = None,
    full: Optional[bool] = None,
) -> pathlib.Path:
    """Generate and write the full report to ``path``."""
    path = pathlib.Path(path)
    reports = generate_report(names=names, full=full)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_report(reports) + "\n")
    return path
