"""Figure 6: chunk-level skew histograms for representative queries (§V-C).

Five queries spanning the observed savings spectrum, with their per-chunk
instance histograms, the minimal half-covering chunk set, the skew metric S,
and the measured savings at recall 0.5. The paper's exemplars:

=====================  ======  =====  ========
query                  N       S      savings
=====================  ======  =====  ========
dashcam / bicycle        249     14     7x
bdd1k / motor            509     19     2x
night-street / person   2078    4.5     3x
archie / car           33546    1.1     1x
amsterdam / boat         588    1.6    0.9x
=====================  ======  =====  ========

The reproduction checks the *relationship*: savings grow with S, except
when the chunk count is so large (bdd1k: 1000 chunks) that surveying eats
the advantage.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import List, Optional, Tuple

import numpy as np

from repro.experiments.parallel import dataset_engine, parallel_map
from repro.query.metrics import savings_ratio
from repro.query.query import DistinctObjectQuery
from repro.theory.skew import SkewSummary
from repro.utils.tables import ascii_table

#: The paper's five representative queries with their published N and S.
PAPER_EXEMPLARS: Tuple[Tuple[str, str, int, float], ...] = (
    ("dashcam", "bicycle", 249, 14.0),
    ("bdd1k", "motor", 509, 19.0),
    ("night_street", "person", 2078, 4.5),
    ("archie", "car", 33546, 1.1),
    ("amsterdam", "boat", 588, 1.6),
)


@dataclass(frozen=True)
class Fig6Config:
    scale: float
    trials: int = 2
    recall: float = 0.5
    seed: int = 0

    @classmethod
    def quick(cls) -> "Fig6Config":
        return cls(scale=0.05)

    @classmethod
    def paper(cls) -> "Fig6Config":
        return cls(scale=1.0, trials=5)


@dataclass
class Fig6Panel:
    dataset: str
    class_name: str
    summary: SkewSummary
    savings: Optional[float]
    paper_n: int
    paper_s: float


@dataclass
class Fig6Result:
    panels: List[Fig6Panel]
    config: Fig6Config


def _run_trial(
    scale: float, seed: int, recall: float, task: Tuple[str, str, int]
) -> Optional[float]:
    """One (dataset, class, trial) savings measurement (picklable unit)."""
    ds_name, class_name, trial = task
    dataset, engine = dataset_engine(ds_name, scale, seed)
    query = DistinctObjectQuery(
        class_name,
        recall_target=recall,
        frame_budget=dataset.total_frames // 2,
    )
    ex = engine.run(query, method="exsample", run_seed=trial)
    rnd = engine.run(query, method="random", run_seed=trial)
    return savings_ratio(rnd.trace, ex.trace, ex.gt_count, recall, mode="time")


def run(config: Fig6Config) -> Fig6Result:
    tasks = [
        (ds_name, class_name, trial)
        for ds_name, class_name, _, _ in PAPER_EXEMPLARS
        for trial in range(config.trials)
    ]
    # Pre-warm the dataset/engine memo (shared with forked workers).
    for ds_name, _, _, _ in PAPER_EXEMPLARS:
        dataset_engine(ds_name, config.scale, config.seed)
    results = parallel_map(
        partial(_run_trial, config.scale, config.seed, config.recall), tasks
    )
    ratio_lists: dict = {}
    for (ds_name, class_name, _trial), ratio in zip(tasks, results, strict=True):
        if ratio is not None:
            ratio_lists.setdefault((ds_name, class_name), []).append(ratio)
    panels: List[Fig6Panel] = []
    for ds_name, class_name, paper_n, paper_s in PAPER_EXEMPLARS:
        dataset, _ = dataset_engine(ds_name, config.scale, config.seed)
        summary = SkewSummary.from_counts(dataset.skew_counts(class_name))
        ratios = ratio_lists.get((ds_name, class_name), [])
        panels.append(
            Fig6Panel(
                dataset=ds_name,
                class_name=class_name,
                summary=summary,
                savings=float(np.median(ratios)) if ratios else None,
                paper_n=paper_n,
                paper_s=paper_s,
            )
        )
    return Fig6Result(panels=panels, config=config)


def format_result(result: Fig6Result) -> str:
    blocks = []
    rows = []
    for panel in result.panels:
        label = f"{panel.dataset}/{panel.class_name}"
        blocks.append(f"{label}\n{panel.summary.bar_chart()}")
        rows.append(
            (
                label,
                panel.summary.total_instances,
                f"{panel.summary.skew:.2g}",
                f"{panel.paper_s:.2g}",
                "-" if panel.savings is None else f"{panel.savings:.2g}x",
            )
        )
    table = ascii_table(
        ["query", "N (ours)", "S (ours)", "S (paper)", "savings@0.5"],
        rows,
        title="Figure 6 — skew and savings for representative queries",
    )
    return "\n\n".join(["\n\n".join(blocks), table])
