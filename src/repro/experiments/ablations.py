"""Ablations of the design choices the paper calls out.

Each function isolates one knob on a controlled workload and reports the
median samples needed to reach a target number of distinct results, so the
effect of the knob is directly comparable:

* :func:`randomplus_ablation` — §III-F's within-chunk random+ order vs
  plain uniform, plus stand-alone random+ vs random.
* :func:`policy_ablation` — Thompson vs Bayes-UCB (§III-C "we also
  experimented with ... but did not observe different results") vs the
  greedy point-estimate strawman of §III-B.
* :func:`prior_ablation` — sensitivity to (alpha0, beta0) (§III-C "we did
  not observe a strong dependence on this value choice").
* :func:`batch_ablation` — batched sampling (§III-F) vs one-at-a-time.
* :func:`chunk_count_ablation` — §IV-C on a real dataset's class intervals.
* :func:`proxy_quality_ablation` — how good a proxy must be before paying
  its scan beats sampling (§V-B / the §VII fusion discussion).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.baselines.random_search import RandomSearcher
from repro.baselines.randomplus_search import RandomPlusSearcher
from repro.core.config import ExSampleConfig
from repro.core.sampler import ExSampleSearcher
from repro.experiments.parallel import parallel_map
from repro.experiments.runner import median_samples_to, repeated_traces
from repro.query.engine import QueryEngine
from repro.query.metrics import time_to_recall
from repro.query.query import DistinctObjectQuery
from repro.theory.instances import InstancePopulation, even_chunk_bounds
from repro.theory.temporal_sim import TemporalEnvironment
from repro.utils.rng import RngFactory
from repro.utils.tables import ascii_table


@dataclass(frozen=True)
class AblationConfig:
    num_instances: int = 1000
    total_frames: int = 1_000_000
    mean_duration: int = 700
    skew: float = 1 / 32
    num_chunks: int = 64
    runs: int = 5
    frame_budget: int = 4000
    target_results: int = 300
    seed: int = 0

    @classmethod
    def quick(cls) -> "AblationConfig":
        return cls(runs=3)

    @classmethod
    def paper(cls) -> "AblationConfig":
        return cls(
            num_instances=2000,
            total_frames=16_000_000,
            runs=15,
            frame_budget=10_000,
            target_results=600,
        )


def _population(config: AblationConfig, rngs: RngFactory) -> InstancePopulation:
    return InstancePopulation.place(
        config.num_instances,
        config.total_frames,
        config.mean_duration,
        rngs.stream("pop"),
        skew_fraction=config.skew,
    )


def _median_to_target(
    make_searcher, config: AblationConfig
) -> Optional[float]:
    traces = repeated_traces(
        make_searcher, config.runs, frame_budget=config.frame_budget
    )
    return median_samples_to(traces, config.target_results)


# -- module-level (hence picklable) searcher factories -----------------------
# Bound with functools.partial at each call site so repeated_traces can fan
# runs out over worker processes; every factory derives its randomness from
# (rngs, key..., run_idx) alone, keeping parallel results serial-identical.


def _make_exsample(population, bounds, rngs, keys, config_kwargs, run_idx):
    env = TemporalEnvironment(population, bounds)
    return ExSampleSearcher(
        env,
        ExSampleConfig(seed=run_idx, **config_kwargs),
        rng=rngs.child("ex", *keys, run_idx),
    )


def _make_random(population, bounds, rngs, run_idx):
    env = TemporalEnvironment(population, bounds)
    return RandomSearcher(env, rng=rngs.child("rnd", run_idx))


def _make_randomplus(population, bounds, rngs, run_idx):
    env = TemporalEnvironment(population, bounds)
    return RandomPlusSearcher(env, rng=rngs.child("rp", run_idx))


def randomplus_ablation(config: AblationConfig) -> Dict[str, Optional[float]]:
    """Median samples-to-target for the four order combinations."""
    rngs = RngFactory(config.seed).child("abl-rplus")
    population = _population(config, rngs)
    bounds = even_chunk_bounds(config.total_frames, config.num_chunks)
    out: Dict[str, Optional[float]] = {}

    for order in ("randomplus", "uniform"):
        make = partial(
            _make_exsample,
            population,
            bounds,
            rngs,
            (order,),
            {"within_chunk_order": order},
        )
        out[f"exsample/{order}"] = _median_to_target(make, config)

    out["random"] = _median_to_target(
        partial(_make_random, population, bounds, rngs), config
    )
    out["random+"] = _median_to_target(
        partial(_make_randomplus, population, bounds, rngs), config
    )
    return out


def policy_ablation(config: AblationConfig) -> Dict[str, Optional[float]]:
    """Thompson vs Bayes-UCB vs greedy vs uniform chunk policies."""
    rngs = RngFactory(config.seed).child("abl-policy")
    population = _population(config, rngs)
    bounds = even_chunk_bounds(config.total_frames, config.num_chunks)
    out: Dict[str, Optional[float]] = {}
    for policy in ("thompson", "bayes_ucb", "greedy", "uniform"):
        make = partial(
            _make_exsample, population, bounds, rngs, (policy,), {"policy": policy}
        )
        out[policy] = _median_to_target(make, config)
    return out


def prior_ablation(config: AblationConfig) -> Dict[str, Optional[float]]:
    """Sensitivity to the Gamma prior pseudo-counts (alpha0, beta0)."""
    rngs = RngFactory(config.seed).child("abl-prior")
    population = _population(config, rngs)
    bounds = even_chunk_bounds(config.total_frames, config.num_chunks)
    out: Dict[str, Optional[float]] = {}
    for alpha0, beta0 in ((0.01, 1.0), (0.1, 1.0), (1.0, 1.0), (0.1, 0.1), (0.1, 10.0)):
        make = partial(
            _make_exsample,
            population,
            bounds,
            rngs,
            (alpha0, beta0),
            {"alpha0": alpha0, "beta0": beta0},
        )
        out[f"a0={alpha0},b0={beta0}"] = _median_to_target(make, config)
    return out


def batch_ablation(config: AblationConfig) -> Dict[str, Optional[float]]:
    """Batched Thompson sampling (§III-F) vs one frame at a time."""
    rngs = RngFactory(config.seed).child("abl-batch")
    population = _population(config, rngs)
    bounds = even_chunk_bounds(config.total_frames, config.num_chunks)
    out: Dict[str, Optional[float]] = {}
    for batch in (1, 8, 64):
        make = partial(
            _make_exsample,
            population,
            bounds,
            rngs,
            (batch,),
            {"batch_size": batch},
        )
        out[f"batch={batch}"] = _median_to_target(make, config)
    return out


def batch_time_ablation(
    config: AblationConfig,
    marginal_fraction: float = 0.4,
) -> Dict[str, Optional[float]]:
    """§III-F's actual argument: batching wins on *time*.

    Larger Thompson batches cost a little sample efficiency (stale beliefs
    within a batch) but buy GPU throughput. This combines the measured
    median samples-to-target with the batched per-frame cost model to
    report seconds-to-target per batch size.
    """
    from repro.query.cost import CostModel

    samples = batch_ablation(config)
    cost_model = CostModel()
    out: Dict[str, Optional[float]] = {}
    for name, median_samples in samples.items():
        batch = int(name.split("=")[1])
        if median_samples is None:
            out[f"{name} seconds"] = None
        else:
            out[f"{name} seconds"] = median_samples * cost_model.batched_sample_cost(
                batch, marginal_fraction
            )
    return out


def chunk_count_ablation(
    config: AblationConfig,
    dataset_name: str = "dashcam",
    class_name: str = "traffic light",
    scale: float = 0.05,
    chunk_counts: Tuple[int, ...] = (1, 4, 16, 64, 256),
) -> Dict[str, Optional[float]]:
    """§IV-C on real-dataset intervals: sweep M over a class's instances."""
    from repro.video.datasets import make_dataset

    dataset = make_dataset(dataset_name, scale=scale, seed=config.seed)
    instances = dataset.world.instances_of(class_name)
    starts = np.array([i.global_start for i in instances], dtype=np.int64)
    durations = np.array([i.duration for i in instances], dtype=np.int64)
    population = InstancePopulation(
        starts=starts, durations=durations, total_frames=dataset.total_frames
    )
    target = max(int(0.7 * len(instances)), 1)
    rngs = RngFactory(config.seed).child("abl-chunks")
    out: Dict[str, Optional[float]] = {}
    for num_chunks in chunk_counts:
        bounds = even_chunk_bounds(dataset.total_frames, num_chunks)
        make = partial(
            _make_exsample, population, bounds, rngs, (num_chunks,), {}
        )
        traces = repeated_traces(
            make, config.runs, frame_budget=dataset.total_frames // 4
        )
        out[f"M={num_chunks}"] = median_samples_to(traces, target)
    return out


def proxy_quality_ablation(
    config: AblationConfig,
    dataset_name: str = "night_street",
    class_name: str = "person",
    scale: float = 0.04,
    qualities: Tuple[float, ...] = (0.5, 0.7, 0.9, 0.99),
    recall: float = 0.5,
) -> Dict[str, Optional[float]]:
    """Time to recall (incl. scan) for proxies of varying quality vs ExSample."""
    from repro.video.datasets import make_dataset

    dataset = make_dataset(dataset_name, scale=scale, seed=config.seed)
    engine = QueryEngine(dataset, seed=config.seed)
    query = DistinctObjectQuery(
        class_name, recall_target=recall, frame_budget=dataset.total_frames // 2
    )
    out: Dict[str, Optional[float]] = {}
    ex = engine.run(query, method="exsample")
    out["exsample"] = time_to_recall(ex.trace, ex.gt_count, recall)
    for quality in qualities:
        px = engine.run(query, method="proxy", proxy_quality=quality)
        out[f"proxy q={quality}"] = time_to_recall(px.trace, px.gt_count, recall)
    return out


def _seqvar_run(
    config: AblationConfig, stride: int, target: int, name: str, run_idx: int
) -> Optional[int]:
    """One re-placed-population run for the sequential-variance ablation.

    Module-level and fully self-seeded from ``(config.seed, name,
    run_idx)`` so runs can execute in any worker process with results
    identical to the historical serial loop.
    """
    from repro.baselines.sequential_search import SequentialSearcher

    rngs = RngFactory(config.seed).child("abl-seqvar")
    population = InstancePopulation.place(
        config.num_instances,
        config.total_frames,
        config.mean_duration,
        rngs.stream("pop", run_idx),
        skew_fraction=config.skew,
        center=float(rngs.stream("center", run_idx).uniform(0.15, 0.85)),
    )
    env = TemporalEnvironment.with_even_chunks(population, config.num_chunks)
    r = rngs.child(name, run_idx)
    if name == "sequential":
        searcher = SequentialSearcher(env, rng=r, stride=stride)
    elif name == "random":
        searcher = RandomSearcher(env, rng=r)
    else:
        searcher = ExSampleSearcher(env, ExSampleConfig(seed=r.seed), rng=r)
    trace = searcher.run(result_limit=target, frame_budget=config.frame_budget * 4)
    return trace.samples_to_results(target)


def sequential_variance_ablation(
    config: AblationConfig,
    target_fraction: float = 0.25,
) -> Dict[str, Dict[str, Optional[float]]]:
    """§II-B: "Sequential processing exhibits high variance in execution
    time due to the uneven distribution of objects in video."

    Measures the median and the inter-quartile spread of samples-to-target
    across runs for sequential, random and ExSample on a skewed workload.
    Sequential runs start from scratch each time on a *re-placed* population
    (same distribution, fresh layout) — the across-dataset variance a user
    actually experiences. Expected: sequential's relative spread dwarfs
    random's.
    """
    target = max(int(target_fraction * config.num_instances), 1)
    out: Dict[str, Dict[str, Optional[float]]] = {}

    # Pick the §II-B frame-rate reduction so one full strided pass fits
    # inside half the run's frame cap — the setting a practitioner would
    # choose, and the one that makes run-to-run variance (not censoring)
    # the observable.
    stride = max(config.total_frames // (config.frame_budget * 2), 1)
    for name in ("sequential", "random", "exsample"):
        needed_per_run = parallel_map(
            partial(_seqvar_run, config, stride, target, name),
            range(config.runs * 2),
        )
        costs: List[float] = [float(n) for n in needed_per_run if n is not None]
        if costs:
            arr = np.array(costs)
            median = float(np.median(arr))
            iqr = float(np.percentile(arr, 75) - np.percentile(arr, 25))
            out[name] = {
                "median": median,
                "iqr": iqr,
                "relative_spread": iqr / median if median > 0 else None,
            }
        else:
            out[name] = {"median": None, "iqr": None, "relative_spread": None}
    return out


def fusion_crossover_ablation(
    config: AblationConfig,
    dataset_name: str = "dashcam",
    class_name: str = "bicycle",
    scale: float = 0.05,
    detector_fps_values: Tuple[float, ...] = (20.0, 5.0, 2.0),
    recall: float = 0.9,
) -> Dict[str, Optional[float]]:
    """§VII fusion vs plain ExSample as the detector gets more expensive.

    The fusion extension pays incremental per-chunk scan costs to cut
    detector invocations. Whether that trade wins depends on the
    scan-vs-detect cost ratio: at the paper's 20 fps detector the scans
    dominate; at 2 fps (a heavy model or ensemble) fusion's ~3x sample
    saving turns into a clear wall-clock win. Returns seconds-to-recall per
    (method, detector_fps).
    """
    from repro.query.cost import CostModel
    from repro.video.datasets import make_dataset

    dataset = make_dataset(dataset_name, scale=scale, seed=config.seed)
    out: Dict[str, Optional[float]] = {}
    for fps in detector_fps_values:
        engine = QueryEngine(
            dataset, cost_model=CostModel(detector_fps=fps), seed=config.seed
        )
        query = DistinctObjectQuery(
            class_name, recall_target=recall, frame_budget=dataset.total_frames
        )
        for method in ("exsample", "exsample_fusion"):
            outcome = engine.run(query, method=method)
            out[f"{method}@{fps:g}fps"] = time_to_recall(
                outcome.trace, outcome.gt_count, recall
            )
    return out


def format_ablation(title: str, results: Dict[str, Optional[float]]) -> str:
    rows = [
        (name, "-" if value is None else f"{value:.4g}")
        for name, value in results.items()
    ]
    return ascii_table(["variant", "value"], rows, title=title)
