"""Experiment harnesses regenerating every paper table and figure.

One module per artifact — :mod:`~repro.experiments.fig2` through
:mod:`~repro.experiments.fig6`, :mod:`~repro.experiments.table1` — plus the
ablation suite. Each module exposes ``run(config)`` and ``format_result``;
the config classes have ``quick()`` and ``paper()`` constructors and
:func:`~repro.experiments.runner.default_config` picks between them based on
the ``REPRO_FULL`` environment variable.

Every harness executes its independent units (runs, trials, cells, rows)
through :mod:`repro.experiments.parallel`: set ``REPRO_JOBS=N`` (or the CLI
``--jobs``) to fan them out over N worker processes with results
element-wise identical to the serial path. ``REPRO_SHARED_WORLD=1``
(``--shared-world``) ships synthetic worlds to those workers over
shared memory, and ``REPRO_CACHE=shared`` (``--shared-cache``) joins
every process onto one detection memo; see :mod:`repro.parallel.shm`.
"""

from repro.experiments import ablations, fig2, fig3, fig4, fig5, fig6, report, table1
from repro.experiments.parallel import (
    clear_dataset_engines,
    dataset_engine,
    parallel_map,
    parallel_sweep_methods,
    parallel_traces,
    resolve_context,
    resolve_jobs,
)
from repro.experiments.runner import (
    default_config,
    is_full_scale,
    median_discovery,
    median_samples_to,
    repeated_traces,
    sample_grid,
    sweep_methods,
)

__all__ = [
    "ablations",
    "clear_dataset_engines",
    "dataset_engine",
    "default_config",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "is_full_scale",
    "median_discovery",
    "median_samples_to",
    "parallel_map",
    "parallel_sweep_methods",
    "parallel_traces",
    "repeated_traces",
    "report",
    "resolve_context",
    "resolve_jobs",
    "sample_grid",
    "sweep_methods",
    "table1",
]
