"""Experiment harnesses regenerating every paper table and figure.

One module per artifact — :mod:`~repro.experiments.fig2` through
:mod:`~repro.experiments.fig6`, :mod:`~repro.experiments.table1` — plus the
ablation suite. Each module exposes ``run(config)`` and ``format_result``;
the config classes have ``quick()`` and ``paper()`` constructors and
:func:`~repro.experiments.runner.default_config` picks between them based on
the ``REPRO_FULL`` environment variable.
"""

from repro.experiments import ablations, fig2, fig3, fig4, fig5, fig6, report, table1
from repro.experiments.runner import (
    default_config,
    is_full_scale,
    median_discovery,
    median_samples_to,
    repeated_traces,
    sample_grid,
)

__all__ = [
    "ablations",
    "default_config",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "is_full_scale",
    "median_discovery",
    "median_samples_to",
    "repeated_traces",
    "report",
    "sample_grid",
    "table1",
]
