"""Figure 2: the Gamma belief vs the true distribution of R(n+1) (§III-D).

Procedure, following the paper: generate ~1000 lognormal ``p_i`` spanning
several orders of magnitude, simulate sampling runs recording
``(n, N1, R(n+1))`` tuples, then — at six (n, N1) cells covering early, mid
and late sampling — compare the histogram of true R(n+1) values against the
belief density Gamma(N1 + 0.1, n + 1).

The paper's qualitative findings this harness verifies:

* early (small n): the belief is *wider* than the truth (conservative);
* mid-range: the belief tracks the truth closely;
* late (N1 near 0): the alpha0 prior keeps Thompson samples nonzero;
* the Eq. III.3 confidence bound covers the truth ~95% under independence
  (the paper's 80% figure is for real, dependent data).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import List, Tuple

import numpy as np

from repro.experiments.parallel import parallel_map
from repro.theory.coin_sim import RunTuples, simulate_run_fast
from repro.theory.estimator_validation import (
    CellReport,
    bias_profile,
    cell_report,
    populated_cells,
    variance_bound_coverage,
)
from repro.theory.instances import lognormal_probabilities
from repro.utils.rng import RngFactory
from repro.utils.tables import ascii_table


@dataclass(frozen=True)
class Fig2Config:
    num_instances: int
    runs: int
    max_n: int
    checkpoints: int
    seed: int = 0

    @classmethod
    def quick(cls) -> "Fig2Config":
        return cls(num_instances=1000, runs=400, max_n=180_000, checkpoints=48)

    @classmethod
    def paper(cls) -> "Fig2Config":
        return cls(num_instances=1000, runs=10_000, max_n=180_000, checkpoints=96)


@dataclass
class Fig2Result:
    cells: List[CellReport]
    variance_coverage: float
    bias_rows: List[Tuple[int, float, float]]
    tuples: RunTuples


def _simulate_block(
    p: np.ndarray, checkpoints: np.ndarray, seed: int, indices: Tuple[int, ...]
) -> RunTuples:
    """Simulate a block of runs, each on its own run-indexed stream.

    Per-run streams (``(seed, "fig2run", run_idx)``) make every run
    independent of which process — and which block — executes it, so the
    pooled tuples are identical for any job count or block split.
    """
    rngs = RngFactory(seed)
    return RunTuples.concatenate(
        [
            simulate_run_fast(p, checkpoints, rngs.stream("fig2run", idx))
            for idx in indices
        ]
    )


def run(config: Fig2Config) -> Fig2Result:
    rngs = RngFactory(config.seed)
    p = lognormal_probabilities(config.num_instances, rngs.stream("p"))
    checkpoints = np.unique(
        np.geomspace(10, config.max_n, num=config.checkpoints).astype(np.int64)
    )
    # A fixed number of contiguous blocks (not a function of the job
    # count) keeps the pooled tuple order — and hence every downstream
    # statistic — identical for any REPRO_JOBS setting.
    num_blocks = min(16, config.runs)
    bounds = np.linspace(0, config.runs, num_blocks + 1).astype(int)
    run_blocks = [
        tuple(range(lo, hi)) for lo, hi in zip(bounds[:-1], bounds[1:], strict=True) if hi > lo
    ]
    parts = parallel_map(
        partial(_simulate_block, p, checkpoints, config.seed), run_blocks
    )
    tuples = RunTuples.concatenate(parts)
    cells = []
    for n, n1 in populated_cells(tuples, num_cells=6):
        report = cell_report(tuples, n, n1)
        if report is not None:
            cells.append(report)
    coverage = variance_bound_coverage(tuples)
    bias_rows = bias_profile(tuples, checkpoints[:: max(len(checkpoints) // 8, 1)])
    return Fig2Result(
        cells=cells,
        variance_coverage=coverage,
        bias_rows=bias_rows,
        tuples=tuples,
    )


def format_result(result: Fig2Result) -> str:
    rows = [
        (
            c.n,
            c.n1,
            c.observations,
            f"{c.true_mean:.3g}",
            f"{c.belief_mean:.3g}",
            f"{c.true_std:.2g}",
            f"{c.belief_std:.2g}",
            f"{c.belief_coverage_95:.2f}",
        )
        for c in result.cells
    ]
    table = ascii_table(
        ["n", "N1", "obs", "true E[R]", "belief E[R]",
         "true sd", "belief sd", "cover95"],
        rows,
        title="Figure 2 — Gamma belief vs true R(n+1) at (n, N1) cells",
    )
    bias = ascii_table(
        ["n", "mean bias E[Rhat - R]", "mean Rhat"],
        [(n, f"{b:+.3g}", f"{e:.3g}") for n, b, e in result.bias_rows],
        title="Estimator bias profile (theorem: bias >= 0, small vs Rhat)",
    )
    coverage = (
        f"Eq. III.3 95% bound coverage of true R(n+1): "
        f"{result.variance_coverage:.1%} (paper: ~95% independent, "
        f"~80% on dependent real data)"
    )
    return "\n\n".join([table, bias, coverage])
