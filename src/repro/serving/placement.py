"""Pluggable shard-placement policies for the fleet router.

A placement policy decides *which shard* serves a query; like the
scheduling policies inside one server (:mod:`repro.serving.policies`) it
decides locality and load shape, never outcomes — every shard of a fleet
serves the same repository with the same engine seed, so a session's
trace is byte-identical wherever it lands.

Built-ins:

* ``hash_tenant`` — stable hash of the tenant name modulo shard count.
  A tenant's queries always land on the same shard, so its detection
  locality (cache scope, chunk beliefs warmed by earlier queries) stays
  in one process. Adding shards remaps tenants, as plain modulo hashing
  does.
* ``least_loaded`` — the shard with the fewest router-tracked active
  sessions at submission time (ties broken by shard index). Best
  throughput for skewed tenants at the price of tenant locality.

Third-party policies register with :func:`register_placement` and are
then selectable by name everywhere a built-in is (``FleetConfig``,
``repro fleet --placement``).
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, Sequence, Union

from repro.errors import ConfigError

__all__ = [
    "PLACEMENT_POLICIES",
    "PlacementPolicy",
    "make_placement_policy",
    "register_placement",
]


class PlacementPolicy:
    """Base class: picks a shard index for one submission."""

    name = "placement"

    def choose(self, item, shards: Sequence) -> int:
        """Index into ``shards`` for this item (0-based).

        ``item`` is a :class:`~repro.serving.workload.WorkloadItem` (or
        anything exposing ``tenant``); each element of ``shards`` exposes
        ``index`` and ``active`` (router-tracked sessions currently
        submitted and not yet terminal).
        """
        raise NotImplementedError


class HashTenantPolicy(PlacementPolicy):
    """Stable tenant-affine placement: blake2(tenant) mod shard count."""

    name = "hash_tenant"

    def choose(self, item, shards: Sequence) -> int:
        tenant = getattr(item, "tenant", "default") or "default"
        digest = hashlib.blake2b(tenant.encode("utf-8"), digest_size=8)
        return int.from_bytes(digest.digest(), "big") % len(shards)


class LeastLoadedPolicy(PlacementPolicy):
    """Send each submission to the currently least-loaded shard."""

    name = "least_loaded"

    def choose(self, item, shards: Sequence) -> int:
        # Return the *position* in the passed sequence, not the shard's
        # own fleet index — supervision hands policies the live subset,
        # where positions and fleet indexes can differ.
        return min(
            range(len(shards)),
            key=lambda i: (shards[i].active, shards[i].index),
        )


#: Registry of available placement policies (name -> factory).
PLACEMENT_POLICIES: Dict[str, Callable[[], PlacementPolicy]] = {}


def register_placement(
    name: str, factory: Callable[[], PlacementPolicy]
) -> None:
    """Register a placement policy under ``name`` (duplicates rejected)."""
    if name in PLACEMENT_POLICIES:
        raise ConfigError(f"placement policy {name!r} is already registered")
    PLACEMENT_POLICIES[name] = factory


register_placement("hash_tenant", HashTenantPolicy)
register_placement("least_loaded", LeastLoadedPolicy)


def make_placement_policy(
    spec: Union[str, PlacementPolicy, None],
) -> PlacementPolicy:
    """Resolve a placement spec (name, instance or None) to a policy."""
    if spec is None:
        return HashTenantPolicy()
    if isinstance(spec, PlacementPolicy):
        return spec
    factory = PLACEMENT_POLICIES.get(spec)
    if factory is None:
        raise ConfigError(
            f"unknown placement policy {spec!r}; "
            f"available: {sorted(PLACEMENT_POLICIES)}"
        )
    return factory()
