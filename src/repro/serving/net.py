"""The wire protocol front-end: a QueryServer behind a TCP socket.

Newline-delimited JSON over :mod:`asyncio` streams — one frame per line,
small enough to debug with ``nc`` and stable enough to version. This is
the network face the ROADMAP's fleet item calls for: :class:`NetServer`
wraps one :class:`~repro.serving.server.QueryServer` and speaks
:data:`PROTOCOL_VERSION` to any number of connections;
:class:`FleetClient` is the matching client, used directly by
applications and by the :class:`~repro.serving.fleet.FleetRouter` to
drive shard processes.

Client frames carry an ``op`` plus a request id ``rid`` (responses echo
it); ops that address a session carry its submission id ``sid``::

    {"op": "submit", "rid": "r1", "sid": "q1",
     "query": {"object": "car", "limit": 5, "tenant": "a"}, "stream": true}
    {"op": "pause",      "rid": "r2", "sid": "q1"}
    {"op": "checkpoint", "rid": "r3", "sid": "q1"}
    {"op": "restore",    "rid": "r4", "sid": "q2", "checkpoint": "<b64>"}
    {"op": "evict",      "rid": "r5", "sid": "q1"}
    {"op": "stats",      "rid": "r6"}
    {"op": "drain",      "rid": "r7", "checkpoint": false}
    {"op": "shutdown",   "rid": "r8"}

Server frames are responses (``{"rid": ..., "ok": true, ...}``), typed
error frames (``{"rid": ..., "error": "ServerOverloadedError",
"message": ...}`` — the client re-raises the named
:mod:`repro.errors` class), or session events (``{"sid": ...,
"event": ...}``). Events mirror the :mod:`repro.query.session`
vocabulary: ``result`` / ``samples`` while streaming is on, and always a
final ``terminal`` frame whose ``state`` is ``finished`` / ``paused`` /
``failed``. A finished terminal frame embeds the pickled
:class:`~repro.query.engine.QueryOutcome` (base64), so a remote result
is *exactly* the object a local ``engine.run`` returns — the fleet test
suite asserts element-wise trace identity through this path.

Checkpoints cross the wire as base64 v2 envelopes
(:mod:`repro.query.session`), digest-verified on restore; pause →
checkpoint → restore against another server is the live-migration
primitive. A draining server answers ``submit`` with a typed
``ServerDrainingError`` frame instead of dropping the connection.

Both ends tolerate a hostile wire: the server answers a non-JSON or
oversized line with a typed ``ProtocolError`` frame (counting it in
``wire_errors``) instead of dropping the connection, and the client
skips undecodable inbound frames, applies per-op timeouts
(:class:`~repro.errors.WireTimeoutError`), retries idempotent ops with
bounded jittered backoff (:class:`RetryPolicy`), and can
:meth:`~FleetClient.reconnect` and re-subscribe to live sessions by
their server-assigned ``gid`` (:meth:`~FleetClient.attach`).

Like session checkpoints, the protocol moves pickled payloads between
processes that trust each other (shards of one fleet); do not expose the
port beyond that trust boundary.
"""

from __future__ import annotations

import asyncio
import base64
import dataclasses
import json
import pickle
import random
from typing import ClassVar, Dict, Optional, Set

import repro.errors as _errors
from repro.errors import (
    ProtocolError,
    QueryError,
    ReproError,
    WireTimeoutError,
)
from repro.query.session import QuerySession, peek_checkpoint
from repro.serving.server import QueryServer, ServerConfig, ServerStats
from repro.serving.workload import WorkloadItem, item_from_json

__all__ = [
    "FleetClient",
    "NetServer",
    "PROTOCOL_VERSION",
    "RemoteSession",
    "RetryPolicy",
    "stats_to_jsonable",
]

#: Bumped on incompatible frame-layout changes; exchanged in ``ping``.
PROTOCOL_VERSION = 1

#: Per-line asyncio stream limit, both directions. Terminal frames embed
#: a whole pickled outcome (trace arrays included) and restore frames a
#: whole checkpoint, so the 64 KiB asyncio default is far too small — an
#: oversized line makes ``readline`` raise mid-stream and looks like a
#: hang to the peer.
_STREAM_LIMIT = 64 * 1024 * 1024


def _encode_frame(frame: dict) -> bytes:
    return json.dumps(frame, separators=(",", ":")).encode("utf-8") + b"\n"


#: Marker returned by :func:`_read_frame_line` for an over-limit line.
_OVERSIZED = object()


async def _read_frame_line(reader: asyncio.StreamReader):
    """One newline-terminated frame, ``b""`` at EOF, or :data:`_OVERSIZED`.

    ``readline()`` raises ``ValueError`` on an over-limit line *and*
    leaves the stream unframed, killing the connection. This variant
    discards the oversized line up to and including its newline, so the
    caller can answer with a typed error frame and keep serving the
    same connection.
    """
    try:
        return await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as exc:
        return exc.partial  # b"" at clean EOF
    except asyncio.LimitOverrunError as exc:
        overrun = exc.consumed
        while True:
            try:
                await reader.readexactly(overrun)
                await reader.readuntil(b"\n")
            except asyncio.IncompleteReadError:
                return b""
            except asyncio.LimitOverrunError as again:
                overrun = again.consumed
                continue
            return _OVERSIZED


def _error_frame(rid, exc: BaseException) -> dict:
    return {"rid": rid, "error": type(exc).__name__, "message": str(exc)}


def _raise_typed(frame: dict) -> None:
    """Re-raise a typed error frame as the named repro error class."""
    name = frame.get("error", "ReproError")
    cls = getattr(_errors, name, None)
    if not (isinstance(cls, type) and issubclass(cls, ReproError)):
        cls = ReproError
    raise cls(frame.get("message", name))


def _jsonable_result(payload) -> dict:
    """A wire-safe summary of one found result (FoundObject or other)."""
    if dataclasses.is_dataclass(payload):
        raw = dataclasses.asdict(payload)
        return {
            key: (list(value) if isinstance(value, tuple) else value)
            for key, value in raw.items()
        }
    return {"repr": repr(payload)}


def stats_to_jsonable(stats: ServerStats) -> dict:
    """Flatten a :class:`ServerStats` snapshot into JSON-safe primitives."""
    return dataclasses.asdict(stats)


class _Connection:
    """One client connection: an ordered, non-blocking outbound queue.

    Frames are enqueued synchronously (event sinks run inside the
    serving loop and must not await) and written by a dedicated task
    that absorbs socket backpressure. A dead peer flips ``closed`` and
    the queue drains into the void — sessions belong to the server, not
    the connection, so they keep running.
    """

    def __init__(self, writer: asyncio.StreamWriter, faults=None):
        self.writer = writer
        self.closed = False
        self.sessions: Dict[str, object] = {}  # sid -> SessionHandle
        #: Optional WireFaults (repro.serving.faults): chaos tests mangle
        #: outbound frames here, the one choke point every frame crosses.
        self.faults = faults
        self._loop = asyncio.get_running_loop()
        self._queue: "asyncio.Queue[Optional[bytes]]" = asyncio.Queue()
        self._writer_task = asyncio.create_task(self._write_loop())

    def send(self, frame: dict) -> None:
        if self.closed:
            return
        data = _encode_frame(frame)
        if self.faults is not None:
            action = self.faults.outbound(frame)
            if action == "drop":
                return
            if action == "corrupt":
                # Undecodable but still newline-terminated: the stream
                # stays framed, so clients must skip it, not die.
                data = b'\x00<<corrupted-frame>>\n'
            elif action is not None:
                self._loop.call_later(
                    float(action), self._queue.put_nowait, data
                )
                return
        self._queue.put_nowait(data)

    async def _write_loop(self) -> None:
        try:
            while True:
                data = await self._queue.get()
                if data is None:
                    break
                self.writer.write(data)
                await self.writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self.closed = True

    async def close(self) -> None:
        self.closed = True
        self._queue.put_nowait(None)
        try:
            await self._writer_task
        finally:
            self.writer.close()
            try:
                await self.writer.wait_closed()
            except ConnectionError:
                pass


# Retry contract of every wire op, consulted by
# :meth:`FleetClient._request_retrying` and enforced by lint (SER402):
# a transport failure leaves the client unsure whether the server
# executed the request, so only ops marked True here may be retried
# blindly. Session-creating and session-mutating ops are False — a
# duplicated submit would burn detector budget twice, a duplicated
# attach trips the per-connection sid check.
OP_IDEMPOTENCY: Dict[str, bool] = {
    "ping": True,
    "stats": True,
    "drain": True,
    "submit": False,
    "restore": False,
    "attach": False,
    "pause": False,
    "checkpoint": False,
    "evict": False,
    "shutdown": False,
}


def _retrieve_task_exception(task: asyncio.Task) -> None:
    """Done-callback that marks a task's exception as retrieved.

    For tasks whose failure has nowhere useful to go (e.g. the detached
    shutdown task — its requester's socket is already closed): without
    this, a failure surfaces as "exception was never retrieved" noise at
    garbage-collection time.
    """
    if not task.cancelled():
        task.exception()


class NetServer:
    """Serve one engine's :class:`QueryServer` over a TCP socket.

    ``port=0`` binds an ephemeral port (read it back from ``.port`` after
    :meth:`start` — how shard processes report their address). Use as an
    async context manager, or ``start()``/``stop()`` explicitly;
    ``repro serve --listen HOST:PORT`` is the CLI wrapper.
    """

    def __init__(
        self,
        engine,
        config: Optional[ServerConfig] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        line_limit: int = _STREAM_LIMIT,
        faults=None,
    ):
        self.engine = engine
        self.query_server = QueryServer(engine, config)
        self.host = host
        self.port = port
        self.line_limit = line_limit
        #: Malformed (non-JSON / oversized) inbound lines answered with a
        #: typed error frame instead of a dropped connection.
        self.wire_errors = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._conns: Set[_Connection] = set()
        self._op_tasks: Set[asyncio.Task] = set()
        self._closed: Optional[asyncio.Event] = None
        # Server-assigned global session ids: unlike sids (per
        # connection), a gid survives the connection that created it, so
        # a reconnecting client can re-subscribe via the attach op.
        self._registry: Dict[str, object] = {}
        self._gid_counter = 0
        # The detached shutdown task (see _op_shutdown); retained here
        # because stop() cancels everything in _op_tasks, which would
        # include the very task running stop().
        self._shutdown_task: Optional[asyncio.Task] = None
        self._wire_faults = None
        if faults:
            from repro.serving.faults import install_faults

            install_faults(self, faults)

    async def __aenter__(self) -> "NetServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    async def start(self) -> "NetServer":
        self._closed = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            limit=self.line_limit,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def wait_closed(self) -> None:
        """Block until :meth:`stop` completes (e.g. via a shutdown op)."""
        assert self._closed is not None, "server not started"
        await self._closed.wait()

    async def stop(self, drain: bool = True, checkpoint: bool = False) -> None:
        """Stop accepting, settle sessions, close every connection.

        ``drain=True`` (default) is the graceful path — in-flight
        sessions finish (or pause, with ``checkpoint=True``) before the
        socket closes; ``drain=False`` cancels them via
        :meth:`QueryServer.shutdown`.
        """
        if self._server is None:
            return
        self._server.close()
        if drain:
            await self.query_server.drain_gracefully(checkpoint=checkpoint)
        else:
            await self.query_server.shutdown()
        for task in list(self._op_tasks):
            task.cancel()
        await asyncio.gather(*self._op_tasks, return_exceptions=True)
        for conn in list(self._conns):
            await conn.close()
        await self._server.wait_closed()
        self._server = None
        if self._closed is not None:
            self._closed.set()

    # -- connection handling -----------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Connection(writer, faults=self._wire_faults)
        self._conns.add(conn)
        try:
            while True:
                line = await _read_frame_line(reader)
                if line is _OVERSIZED:
                    # One oversized line answers with a typed error frame
                    # — the stream stays framed (the line was discarded
                    # through its newline), so the connection lives on.
                    self.wire_errors += 1
                    conn.send(_error_frame(None, ProtocolError(
                        f"frame exceeds the {self.line_limit}-byte "
                        "line limit"
                    )))
                    continue
                if not line:
                    break
                if not line.strip():
                    continue
                task = asyncio.create_task(self._dispatch(conn, line))
                self._op_tasks.add(task)
                task.add_done_callback(self._op_tasks.discard)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            # The socket is gone; detach event sinks so finished steps
            # stop building frames nobody will read. Sessions run on.
            for handle in conn.sessions.values():
                handle.event_sink = None
            self._conns.discard(conn)
            await conn.close()

    async def _dispatch(self, conn: _Connection, line: bytes) -> None:
        rid = None
        try:
            try:
                frame = json.loads(line)
            except json.JSONDecodeError as exc:
                self.wire_errors += 1
                raise ProtocolError(f"undecodable frame: {exc}") from exc
            if not isinstance(frame, dict) or "op" not in frame:
                self.wire_errors += 1
                raise ProtocolError("frames must be objects with an 'op'")
            rid = frame.get("rid")
            op = frame["op"]
            handler = getattr(self, f"_op_{op}", None)
            if handler is None:
                raise ProtocolError(f"unknown op {op!r}")
            await handler(conn, rid, frame)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 - becomes a typed frame
            conn.send(_error_frame(rid, exc))

    # -- session plumbing ----------------------------------------------------

    def _event_sink(self, conn: _Connection, sid: str):
        """Build the per-step callback that streams events for one session."""

        def sink(handle, step) -> None:
            if conn.closed:
                return
            run = handle.session.search_run
            count_before = run.num_results - len(step.new_results)
            for offset, (sample_index, payload) in enumerate(
                step.new_results, start=1
            ):
                conn.send(
                    {
                        "sid": sid,
                        "event": "result",
                        "sample_index": sample_index,
                        "num_results": count_before + offset,
                        "result": _jsonable_result(payload),
                    }
                )
            if step.picks:
                conn.send(
                    {
                        "sid": sid,
                        "event": "samples",
                        "num_picks": len(step.picks),
                        "num_samples": run.num_samples,
                        "num_results": run.num_results,
                        "total_cost": run.total_cost,
                    }
                )

        return sink

    async def _watch_terminal(
        self, conn: _Connection, sid: str, handle
    ) -> None:
        """Send the terminal frame once a session settles."""
        state = await handle.wait()
        session = handle.session
        frame = {
            "sid": sid,
            "event": "terminal",
            "state": state,
            "num_samples": session.num_samples,
            "num_results": session.num_results,
            "total_cost": session.total_cost,
        }
        if state == "finished":
            frame["reason"] = session.reason
            frame["outcome"] = base64.b64encode(
                pickle.dumps(
                    session.outcome(), protocol=pickle.HIGHEST_PROTOCOL
                )
            ).decode("ascii")
        elif state == "failed":
            frame["error"] = type(handle.error).__name__
            frame["message"] = str(handle.error)
        conn.send(frame)

    async def _admit(
        self, conn: _Connection, rid, frame: dict, *, session=None,
        item: Optional[WorkloadItem] = None,
    ) -> None:
        """Shared tail of submit/restore: admission, ack, event wiring."""
        sid = frame.get("sid")
        if not isinstance(sid, str) or not sid:
            raise ProtocolError("submit/restore frames need a string 'sid'")
        if sid in conn.sessions:
            raise ProtocolError(f"sid {sid!r} is already in use")
        stream = bool(frame.get("stream", False))
        wait = bool(frame.get("wait", False))
        sink = self._event_sink(conn, sid) if stream else None
        pause_after = frame.get("pause_after")
        if session is not None:
            handle = await self.query_server.submit(
                session=session,
                tenant=frame.get("tenant", "default"),
                deadline=frame.get("deadline"),
                pause_after=pause_after,
                wait=wait,
                event_sink=sink,
            )
        else:
            assert item is not None
            if pause_after is None:
                pause_after = item.pause_after
            kwargs = (
                {"batch_size": item.batch_size}
                if item.batch_size is not None
                else {}
            )
            handle = await self.query_server.submit(
                item.query(),
                method=item.method,
                run_seed=item.run_seed,
                tenant=item.tenant,
                deadline=item.deadline,
                pause_after=pause_after,
                wait=wait,
                event_sink=sink,
                **kwargs,
            )
        conn.sessions[sid] = handle
        self._gid_counter += 1
        gid = f"g{self._gid_counter}"
        self._registry[gid] = handle
        conn.send(
            {"rid": rid, "ok": True, "op": frame["op"], "sid": sid,
             "gid": gid}
        )
        task = asyncio.create_task(self._watch_terminal(conn, sid, handle))
        self._op_tasks.add(task)
        task.add_done_callback(self._op_tasks.discard)

    def _handle_for(self, conn: _Connection, frame: dict):
        sid = frame.get("sid")
        handle = conn.sessions.get(sid)
        if handle is None:
            raise ProtocolError(f"unknown sid {sid!r} on this connection")
        return handle

    # -- ops -----------------------------------------------------------------

    async def _op_ping(self, conn, rid, frame) -> None:
        conn.send(
            {"rid": rid, "ok": True, "op": "ping",
             "protocol": PROTOCOL_VERSION,
             "draining": self.query_server.draining}
        )

    async def _op_submit(self, conn, rid, frame) -> None:
        query = frame.get("query")
        if not isinstance(query, dict):
            raise ProtocolError("submit frames need a 'query' object")
        item = item_from_json(query)
        await self._admit(conn, rid, frame, item=item)

    async def _op_restore(self, conn, rid, frame) -> None:
        blob_b64 = frame.get("checkpoint")
        if not isinstance(blob_b64, str):
            raise ProtocolError("restore frames need a base64 'checkpoint'")
        try:
            blob = base64.b64decode(blob_b64.encode("ascii"), validate=True)
        except Exception as exc:
            raise ProtocolError(f"checkpoint is not valid base64: {exc}") from exc
        session = QuerySession.restore(blob)
        await self._admit(conn, rid, frame, session=session)

    async def _op_attach(self, conn, rid, frame) -> None:
        """Re-subscribe to a live (or finished) session after a reconnect.

        The session is addressed by the server-assigned ``gid`` from its
        submit/restore ack — sids are per-connection, gids are not. The
        attach re-wires streaming (if asked) and re-arms the terminal
        frame on this connection, so a client that lost its socket
        mid-session picks the outcome up without redoing any work.
        """
        sid = frame.get("sid")
        if not isinstance(sid, str) or not sid:
            raise ProtocolError("attach frames need a string 'sid'")
        if sid in conn.sessions:
            raise ProtocolError(f"sid {sid!r} is already in use")
        gid = frame.get("gid")
        handle = self._registry.get(gid)
        if handle is None:
            raise ProtocolError(f"unknown session gid {gid!r}")
        if frame.get("stream"):
            handle.event_sink = self._event_sink(conn, sid)
        conn.sessions[sid] = handle
        conn.send(
            {"rid": rid, "ok": True, "op": "attach", "sid": sid,
             "gid": gid, "state": handle.state}
        )
        task = asyncio.create_task(self._watch_terminal(conn, sid, handle))
        self._op_tasks.add(task)
        task.add_done_callback(self._op_tasks.discard)

    async def _op_pause(self, conn, rid, frame) -> None:
        handle = self._handle_for(conn, frame)
        handle.pause()
        conn.send({"rid": rid, "ok": True, "op": "pause", "sid": frame["sid"]})

    async def _op_checkpoint(self, conn, rid, frame) -> None:
        handle = self._handle_for(conn, frame)
        if not handle.done:
            raise QueryError(
                "session is still running; pause it and await the terminal "
                "event before checkpointing"
            )
        if handle.state == "failed":
            raise QueryError("a failed session cannot be checkpointed")
        blob = handle.session.checkpoint()
        meta = peek_checkpoint(blob)
        conn.send(
            {
                "rid": rid,
                "ok": True,
                "op": "checkpoint",
                "sid": frame["sid"],
                "checkpoint": base64.b64encode(blob).decode("ascii"),
                "meta": {
                    "method": meta.method,
                    "num_samples": meta.num_samples,
                    "num_results": meta.num_results,
                    "total_cost": meta.total_cost,
                    "payload_bytes": meta.payload_bytes,
                },
            }
        )

    async def _op_evict(self, conn, rid, frame) -> None:
        handle = self._handle_for(conn, frame)
        if not self.query_server.evict(handle):
            raise QueryError(
                "session is still running; only terminal sessions "
                "(finished, failed or paused) can be evicted"
            )
        conn.sessions.pop(frame["sid"], None)
        conn.send({"rid": rid, "ok": True, "op": "evict", "sid": frame["sid"]})

    async def _op_stats(self, conn, rid, frame) -> None:
        cache = getattr(self.engine, "detection_cache", None)
        publish = getattr(cache, "publish_counters", None)
        if publish is not None:
            # Shared-cache fleets aggregate per-scope counters router-side
            # (SharedDetectionCache.aggregate_info); publishing here makes
            # every stats round-trip refresh this shard's row.
            publish()
        payload = stats_to_jsonable(self.query_server.stats())
        payload["wire_errors"] = self.wire_errors
        conn.send(
            {
                "rid": rid,
                "ok": True,
                "op": "stats",
                "stats": payload,
            }
        )

    async def _op_drain(self, conn, rid, frame) -> None:
        await self.query_server.drain_gracefully(
            checkpoint=bool(frame.get("checkpoint", False))
        )
        conn.send({"rid": rid, "ok": True, "op": "drain"})

    async def _op_shutdown(self, conn, rid, frame) -> None:
        conn.send({"rid": rid, "ok": True, "op": "shutdown"})
        # Ack first (the stop below closes this very connection), then
        # detach into a task so the dispatch task is not cancelled by the
        # stop it is itself running. The handle is retained on the server
        # (it cannot live in _op_tasks — stop() cancels those) and its
        # exception is retrieved by the done-callback, so a failing stop
        # no longer logs "exception was never retrieved" at GC time.
        self._shutdown_task = asyncio.create_task(
            self.stop(
                drain=bool(frame.get("drain", True)),
                checkpoint=bool(frame.get("checkpoint", False)),
            )
        )
        self._shutdown_task.add_done_callback(_retrieve_task_exception)


async def serve_forever(
    engine,
    host: str = "127.0.0.1",
    port: int = 0,
    config: Optional[ServerConfig] = None,
    ready=None,
    faults=None,
) -> None:
    """Run a :class:`NetServer` until a client sends ``shutdown``.

    ``ready`` is an optional callable invoked with the bound port once
    the socket is listening — how shard processes report their ephemeral
    port to the router that spawned them. ``faults`` arms a sequence of
    :class:`~repro.serving.faults.FaultSpec` on this server (chaos
    testing).
    """
    server = NetServer(engine, config=config, host=host, port=port,
                       faults=faults)
    await server.start()
    if ready is not None:
        ready(server.port)
    await server.wait_closed()


# ---------------------------------------------------------------------------
# The client.
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with jitter for idempotent ops.

    ``attempts`` bounds the total tries (first try included); waits grow
    ``base_delay * 2**n`` capped at ``max_delay``, plus up to ``jitter``
    (a fraction of the computed delay) of uniform noise so a fleet of
    retrying clients does not thunder in lockstep.
    """

    attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 1.0
    jitter: float = 0.5

    # Jitter draws from a private stream so library backoff neither
    # perturbs nor is perturbed by the process-global ``random`` module:
    # an application that calls ``random.seed()`` for its own
    # reproducibility keeps an untouched stream (DET101).
    _jitter_rng: ClassVar[random.Random] = random.Random()

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise _errors.ConfigError("retry attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0 or self.jitter < 0:
            raise _errors.ConfigError("retry delays must be >= 0")

    def backoff(self, attempt: int) -> float:
        """The wait before retry number ``attempt`` (0-based)."""
        delay = min(self.base_delay * (2 ** attempt), self.max_delay)
        return delay + self._jitter_rng.uniform(0.0, self.jitter * delay)


class RemoteSession:
    """Client-side face of one session submitted over the wire.

    The analogue of :class:`~repro.serving.server.SessionHandle` with a
    network in between: :meth:`wait` for the terminal state,
    :meth:`result` for the full :class:`~repro.query.engine.QueryOutcome`
    (reconstructed from the terminal frame), :meth:`events` for the live
    stream (only if submitted with ``stream=True``), :meth:`pause` /
    :meth:`checkpoint` for migration.
    """

    def __init__(self, client: "FleetClient", sid: str):
        self.client = client
        self.sid = sid
        #: Server-assigned global session id (from the submit/restore
        #: ack): survives the connection, so after a reconnect
        #: :meth:`FleetClient.attach` re-subscribes with it.
        self.gid: Optional[str] = None
        self.events_queue: "asyncio.Queue[Optional[dict]]" = asyncio.Queue()
        self._terminal: "asyncio.Future[dict]" = (
            asyncio.get_running_loop().create_future()
        )

    @property
    def done(self) -> bool:
        return self._terminal.done()

    async def wait(self) -> str:
        """Await the terminal frame; returns its state string."""
        frame = await asyncio.shield(self._terminal)
        return frame["state"]

    async def terminal(self) -> dict:
        """Await and return the raw terminal frame."""
        return await asyncio.shield(self._terminal)

    async def result(self):
        """Await completion and return the remote QueryOutcome."""
        frame = await self.terminal()
        if frame["state"] == "failed":
            _raise_typed(frame)
        if frame["state"] == "paused":
            raise QueryError(
                "session was paused before finishing; checkpoint it and "
                "restore elsewhere to resume"
            )
        return pickle.loads(base64.b64decode(frame["outcome"]))

    async def events(self):
        """Yield event frames until (and including) the terminal frame."""
        while True:
            frame = await self.events_queue.get()
            if frame is None:
                return
            yield frame

    async def pause(self) -> None:
        await self.client._request({"op": "pause", "sid": self.sid})

    async def checkpoint(self) -> bytes:
        """Fetch the paused/finished session's checkpoint blob."""
        response = await self.client._request(
            {"op": "checkpoint", "sid": self.sid}
        )
        return base64.b64decode(response["checkpoint"])

    async def evict(self) -> None:
        """Drop this terminal session from the server's stats history.

        Frees the shard-side record (which pins the whole session) once
        the caller has everything it needs — the checkpoint cycle and
        migration call this on each superseded incarnation so long-lived
        fleets do not accumulate one paused ghost per checkpoint.
        """
        await self.client._request({"op": "evict", "sid": self.sid})
        self.client._sessions.pop(self.sid, None)


class FleetClient:
    """Protocol client for one :class:`NetServer` (one shard).

    One TCP connection multiplexes any number of sessions; a background
    reader task routes response frames to their awaiting requests and
    event frames to their :class:`RemoteSession`.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        host: Optional[str] = None,
        port: Optional[int] = None,
        op_timeout: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
    ):
        self._reader = reader
        self._writer = writer
        self.host = host
        self.port = port
        #: Default per-request timeout (None: wait forever). A timed-out
        #: request raises :class:`~repro.errors.WireTimeoutError`.
        self.op_timeout = op_timeout
        self.retry = retry or RetryPolicy()
        #: Operations re-issued after a transport failure or timeout.
        self.retries = 0
        #: Undecodable inbound frames skipped (corrupt lines).
        self.wire_errors = 0
        self._closing = False
        self._pending: Dict[str, asyncio.Future] = {}
        self._sessions: Dict[str, RemoteSession] = {}
        self._counter = 0
        self._read_task = asyncio.create_task(self._read_loop())

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        *,
        op_timeout: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> "FleetClient":
        reader, writer = await asyncio.open_connection(
            host, port, limit=_STREAM_LIMIT
        )
        return cls(reader, writer, host=host, port=port,
                   op_timeout=op_timeout, retry=retry)

    @property
    def connected(self) -> bool:
        """False once the reader task died (connection lost or closed)."""
        return not self._read_task.done() and not self._closing

    async def close(self) -> None:
        self._closing = True
        self._read_task.cancel()
        try:
            await self._read_task
        except asyncio.CancelledError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def reconnect(self) -> None:
        """Re-open the TCP connection to the same server.

        Pending requests and un-terminal sessions on the dropped
        connection fail with ``ConnectionError`` — the server keeps
        running their sessions, so callers re-subscribe with
        :meth:`attach` using each session's ``gid``. Only clients built
        by :meth:`connect` (which know their address) can reconnect.
        """
        if self._closing:
            raise ConnectionError("client is closed")
        if self.host is None or self.port is None:
            raise ConnectionError(
                "client was built from raw streams; cannot reconnect"
            )
        self._read_task.cancel()
        try:
            await self._read_task
        except asyncio.CancelledError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port, limit=_STREAM_LIMIT
        )
        self._read_task = asyncio.create_task(self._read_loop())

    # -- plumbing ------------------------------------------------------------

    def _next_id(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                try:
                    frame = json.loads(line)
                except ValueError:
                    # One corrupt line must not unframe the client:
                    # newlines delimit frames, so skip it and read on.
                    self.wire_errors += 1
                    continue
                if not isinstance(frame, dict):
                    self.wire_errors += 1
                    continue
                if "event" in frame:
                    session = self._sessions.get(frame.get("sid"))
                    if session is None:
                        continue
                    if frame["event"] == "terminal":
                        if not session._terminal.done():
                            session._terminal.set_result(frame)
                        session.events_queue.put_nowait(frame)
                        session.events_queue.put_nowait(None)
                    else:
                        session.events_queue.put_nowait(frame)
                    continue
                future = self._pending.pop(frame.get("rid"), None)
                if future is not None and not future.done():
                    future.set_result(frame)
        except (ConnectionError, asyncio.CancelledError, ValueError):
            # json.JSONDecodeError and over-limit readline errors are both
            # ValueError: either way the stream is unframed from here on.
            pass
        finally:
            # A fresh exception instance per future: re-raising a shared
            # one from several awaiters splices their tracebacks together.
            # Mark each retrieved immediately (``.exception()`` clears the
            # log flag, later awaiters still raise): recovery routinely
            # abandons a dead generation's in-flight requests, and every
            # abandoned future would otherwise print "exception was never
            # retrieved" at garbage collection.
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(
                        ConnectionError("connection to server lost")
                    )
                    future.exception()
            self._pending.clear()
            for session in self._sessions.values():
                if not session._terminal.done():
                    session._terminal.set_exception(
                        ConnectionError("connection to server lost")
                    )
                    session._terminal.exception()
                session.events_queue.put_nowait(None)

    async def _request(
        self, frame: dict, *, timeout: Optional[float] = -1.0
    ) -> dict:
        """One request/response round-trip with a per-op timeout.

        ``timeout=-1.0`` (the default sentinel) means "use this client's
        ``op_timeout``"; None waits forever.
        """
        if timeout is not None and timeout < 0:
            timeout = self.op_timeout
        rid = self._next_id("r")
        frame = dict(frame, rid=rid)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[rid] = future
        try:
            self._writer.write(_encode_frame(frame))
            await self._writer.drain()
            if timeout is None:
                response = await future
            else:
                # Plain future with no cleanup obligations: on timeout the
                # pending rid is dropped below and a late response frame is
                # discarded by _read_loop, so the bpo-42130 cancellation
                # race cannot strand state.
                response = await asyncio.wait_for(future, timeout)  # repro-lint: allow[AIO201]
        except (asyncio.TimeoutError, TimeoutError) as exc:
            self._pending.pop(rid, None)
            raise WireTimeoutError(
                f"op {frame.get('op')!r} timed out after {timeout:g}s"
            ) from exc
        except (ConnectionError, OSError):
            self._pending.pop(rid, None)
            raise
        if "error" in response:
            _raise_typed(response)
        return response

    async def _request_retrying(self, frame: dict) -> dict:
        """Issue an *idempotent* request, retrying transport failures.

        Reconnects (when the connection died and this client knows its
        address) and backs off per :class:`RetryPolicy` between tries.
        Typed server errors are not retried — those are answers.
        """
        op = frame.get("op")
        if not OP_IDEMPOTENCY.get(op, False):
            raise _errors.ProtocolError(
                f"op {op!r} is not declared idempotent in OP_IDEMPOTENCY; "
                "it must not be retried blindly"
            )
        policy = self.retry
        last: Optional[BaseException] = None
        for attempt in range(policy.attempts):
            if attempt:
                self.retries += 1
                await asyncio.sleep(policy.backoff(attempt - 1))
            if self._read_task.done() and not self._closing:
                try:
                    await self.reconnect()
                except (ConnectionError, OSError) as exc:
                    last = exc
                    continue
            try:
                return await self._request(frame)
            except (WireTimeoutError, ConnectionError, OSError) as exc:
                last = exc
        assert last is not None
        raise last

    # -- the protocol surface ------------------------------------------------

    async def ping(
        self, *, timeout: Optional[float] = -1.0, retrying: bool = True
    ) -> dict:
        """Round-trip a ping; with ``retrying=False`` exactly one try
        (how heartbeat monitors count misses themselves)."""
        if not retrying:
            return await self._request({"op": "ping"}, timeout=timeout)
        return await self._request_retrying({"op": "ping"})

    async def submit(
        self,
        item: Optional[WorkloadItem] = None,
        *,
        wait: bool = False,
        stream: bool = False,
        pause_after: Optional[int] = None,
        **query_fields,
    ) -> RemoteSession:
        """Submit one query; returns its :class:`RemoteSession`.

        Pass a :class:`~repro.serving.workload.WorkloadItem` or its
        fields as keywords (``object="car", limit=5, tenant="a"``).
        ``wait=False`` (default) surfaces a full server as a typed
        :class:`~repro.errors.ServerOverloadedError`; ``stream=True``
        turns on per-step ``result``/``samples`` event frames.
        """
        if item is None:
            item = WorkloadItem(**query_fields)
        elif query_fields:
            raise QueryError("pass item= or query fields, not both")
        query = {
            key: value
            for key, value in dataclasses.asdict(item).items()
            if value is not None
        }
        query.pop("arrival", None)  # scheduling, not query, metadata
        query.pop("shard", None)  # consumed router-side
        frame = {
            "op": "submit",
            "sid": self._next_id("q"),
            "query": query,
            "wait": wait,
            "stream": stream,
        }
        if pause_after is not None:
            frame["pause_after"] = pause_after
        return await self._admit(frame)

    async def restore(
        self,
        checkpoint: bytes,
        *,
        tenant: str = "default",
        deadline: Optional[float] = None,
        wait: bool = False,
        stream: bool = False,
        pause_after: Optional[int] = None,
    ) -> RemoteSession:
        """Resubmit a checkpointed session on this server (migration)."""
        frame = {
            "op": "restore",
            "sid": self._next_id("q"),
            "checkpoint": base64.b64encode(checkpoint).decode("ascii"),
            "tenant": tenant,
            "wait": wait,
            "stream": stream,
        }
        if deadline is not None:
            frame["deadline"] = deadline
        if pause_after is not None:
            frame["pause_after"] = pause_after
        return await self._admit(frame)

    async def attach(self, gid: str, *, stream: bool = False) -> RemoteSession:
        """Re-subscribe to a session by its server-assigned ``gid``.

        The stream re-subscription path after :meth:`reconnect`: the
        server re-arms the terminal frame (and, with ``stream=True``,
        the event stream) on the current connection, returning a fresh
        :class:`RemoteSession` for a session that never stopped running.
        """
        frame = {
            "op": "attach",
            "sid": self._next_id("q"),
            "gid": gid,
            "stream": stream,
        }
        return await self._admit(frame)

    async def _admit(self, frame: dict) -> RemoteSession:
        session = RemoteSession(self, frame["sid"])
        self._sessions[frame["sid"]] = session
        try:
            response = await self._request(frame)
        except BaseException:
            self._sessions.pop(frame["sid"], None)
            session.events_queue.put_nowait(None)
            raise
        session.gid = response.get("gid", frame.get("gid"))
        return session

    async def stats(self) -> dict:
        """The server's :class:`ServerStats`, as JSON primitives.

        Idempotent, so transport failures retry per this client's
        :class:`RetryPolicy`.
        """
        response = await self._request_retrying({"op": "stats"})
        return response["stats"]

    async def drain(self, checkpoint: bool = False) -> None:
        """Ask the server to drain gracefully; returns once settled."""
        await self._request({"op": "drain", "checkpoint": checkpoint})

    async def shutdown_server(
        self, drain: bool = True, checkpoint: bool = False
    ) -> None:
        """Stop the remote server (draining first by default)."""
        await self._request(
            {"op": "shutdown", "drain": drain, "checkpoint": checkpoint}
        )
