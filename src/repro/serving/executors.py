"""Pluggable detector executors: run fused ``detect_batch`` calls off-loop.

The batcher fuses many sessions' frame requests into one detector call —
but a fused call executed *inline* blocks the event loop for its whole
duration, so every runnable session stalls while the detector works. The
serving micro-bench made the cost concrete: fusing cut detector calls
5.3x yet fused wall-clock was *worse* than sequential solo runs, because
nothing overlapped. A :class:`DetectorExecutor` decides *where* a fused
call runs:

* ``inline`` — synchronously on the event loop. Zero overhead, zero
  overlap; the right choice for microsecond-fast detectors and for tests
  that want strictly sequential execution.
* ``thread`` — a ``concurrent.futures.ThreadPoolExecutor`` worker. The
  loop keeps scheduling sessions while the detector runs; real speedups
  require the detector to release the GIL for its heavy lifting (numpy
  kernels, ONNX Runtime, torch inference all do).
* ``process`` — a ``ProcessPoolExecutor`` worker. Full GIL isolation at
  the price of IPC: the call ships as a
  :class:`~repro.detection.simulated.DetectTask` (the world travels as a
  ~100-byte shared-memory handle, cache hits are resolved parent-side so
  only misses cross the boundary, and the worker scope-checks the task
  against the world it actually attached).

Executors change *where* a batch executes, never *what* it computes:
detection is a pure function of ``(seed, video, frame)``, batch
composition is decided on the loop before dispatch, and every executor
returns exactly what an inline ``detect_batch`` call would. Outcomes are
element-wise identical across all three (the identity suites prove it
for every registered method).

``register_executor`` is the plug-in point, mirroring the scheduling
policy and fleet placement registries: a real GPU/ONNX backend registers
a factory here (typically a thread executor whose detector wraps the
accelerator runtime) and every server/fleet/CLI surface accepts it by
name.
"""

from __future__ import annotations

import asyncio
import functools
import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Union

from repro.errors import ConfigError

__all__ = [
    "DETECTOR_EXECUTORS",
    "DetectorExecutor",
    "ExecutorSpec",
    "InlineDetectorExecutor",
    "ProcessDetectorExecutor",
    "ThreadDetectorExecutor",
    "make_executor",
    "register_executor",
    "validate_executor_spec",
]

#: What ``ServerConfig(executor=...)`` and the CLI accept: a registered
#: name (optionally ``"name:arg"``), an executor instance, or None.
ExecutorSpec = Union[str, "DetectorExecutor", None]


class DetectorExecutor:
    """Where a fused ``detect_batch`` call runs.

    Contract: :meth:`submit` (off-loop executors) resolves to — and
    :meth:`run` (inline executors) returns — exactly what
    ``detector.detect_batch(videos, frames, class_filter=...)`` would
    return, with the *parent* detector's invocation counters and cache
    updated as an inline call would update them.

    ``off_loop`` tells the batcher which side of the contract applies:
    inline executors run synchronously inside the flush (preserving the
    strictly sequential scheduling every pre-executor test encodes),
    off-loop executors return a future and unlock pipelining. Resources
    (pools, shared-memory publications) are created lazily on first use
    and released by :meth:`close`/:meth:`aclose`; both are idempotent,
    and a closed executor may be used again (a fresh pool is created).
    """

    #: Registry name (or a human label for ad-hoc instances).
    name: str = "base"
    #: False → the batcher calls :meth:`run` synchronously.
    off_loop: bool = True

    def run(self, detector, videos, frames, class_filter) -> List[list]:
        """Synchronous execution (inline executors only)."""
        raise NotImplementedError(
            f"{type(self).__name__} is off-loop; use submit()"
        )

    def submit(
        self,
        detector,
        videos: List[int],
        frames: List[int],
        class_filter: Optional[str],
        loop: asyncio.AbstractEventLoop,
    ) -> "asyncio.Future[List[list]]":
        """Schedule one fused call; resolve on ``loop`` with its result."""
        raise NotImplementedError

    def close(self) -> None:
        """Release pools/resources synchronously (idempotent)."""

    async def aclose(self) -> None:
        """Release pools/resources without blocking the loop (idempotent)."""
        await asyncio.get_running_loop().run_in_executor(None, self.close)

    def describe(self) -> str:
        return self.name


class InlineDetectorExecutor(DetectorExecutor):
    """Run fused calls synchronously on the event loop (the default).

    This is the pre-executor behaviour, bit for bit: no futures, no
    thread hops, no pipelining — the flush that assembled a batch also
    detects it before the next session resumes.
    """

    name = "inline"
    off_loop = False

    def run(self, detector, videos, frames, class_filter) -> List[list]:
        return detector.detect_batch(videos, frames, class_filter=class_filter)

    async def aclose(self) -> None:  # nothing to release, no loop hop
        return None


class ThreadDetectorExecutor(DetectorExecutor):
    """Run fused calls on a worker thread.

    The detector object is *shared* with the loop thread — no pickling,
    no IPC, the warm cache is used directly (``SimulatedDetector`` keeps
    its rng thread-local and its counters lock-guarded for exactly this).
    Overlap with session CPU work is real to the extent the detector
    releases the GIL; the simulated detector's numpy inner loops do, and
    real inference runtimes (ONNX, torch) famously do.
    """

    name = "thread"

    def __init__(self, max_workers: int = 1):
        if max_workers < 1:
            raise ConfigError("thread executor needs max_workers >= 1")
        self.max_workers = int(max_workers)
        self._pool: Optional[ThreadPoolExecutor] = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.max_workers,
                thread_name_prefix="repro-detect",
            )
        return self._pool

    def submit(self, detector, videos, frames, class_filter, loop):
        return loop.run_in_executor(
            self._ensure_pool(),
            functools.partial(
                detector.detect_batch, videos, frames,
                class_filter=class_filter,
            ),
        )

    def close(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def describe(self) -> str:
        return f"{self.name}(workers={self.max_workers})"


def _exit_when_orphaned(parent_pid: int, poll_s: float = 1.0) -> None:
    """Pool-worker initializer: exit once the owning process is gone.

    A pool owner that dies *uncleanly* — a fleet shard SIGKILLed by the
    chaos harness, an OOM-killed server — never shuts its pool down, and
    the orphaned workers then block on the call queue forever: under the
    fork start method every worker inherits the queue's write end, so
    the read side never sees EOF. The orphans hold every inherited
    descriptor (stdout pipes included) open indefinitely. Each worker
    therefore watches for reparenting from a daemon thread and
    ``os._exit``\\ s when its parent pid changes — no atexit, no GC: an
    orphan has nothing worth flushing.
    """

    def _watch() -> None:
        while os.getppid() == parent_pid:
            time.sleep(poll_s)
        os._exit(2)

    threading.Thread(
        target=_watch, name="repro-orphan-watch", daemon=True
    ).start()


class ProcessDetectorExecutor(DetectorExecutor):
    """Run fused calls in worker processes (full GIL isolation).

    On first submit the detector's world is published to shared memory
    (unless an outer scope — a fleet shard, a parallel experiment —
    already published it), so each task pickles in ~100 bytes instead of
    megabytes. The call itself is split parent-side
    (:func:`~repro.detection.simulated.split_detect_task`): cache hits
    resolve on the warm parent cache, only misses ship, the worker
    verifies the task's ``cache_scope`` against the world it attached,
    and the parent memoizes the returned detections. Stats and cache
    behaviour therefore match an inline call exactly.
    """

    name = "process"

    def __init__(self, context: Optional[str] = None, max_workers: int = 1):
        if max_workers < 1:
            raise ConfigError("process executor needs max_workers >= 1")
        self.context = context
        self.max_workers = int(max_workers)
        self._pool: Optional[ProcessPoolExecutor] = None
        self._stores: List[object] = []

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            from repro.experiments.parallel import resolve_context

            self._pool = ProcessPoolExecutor(
                max_workers=self.max_workers,
                mp_context=resolve_context(self.context),
                initializer=_exit_when_orphaned,
                initargs=(os.getpid(),),
            )
        return self._pool

    def _ensure_world(self, detector) -> None:
        world = getattr(detector, "world", None)
        if world is None:
            return
        from repro.parallel.shm import publish_worlds

        # publish_worlds skips already-published worlds (their owner
        # closes them); stores created here are ours to close.
        self._stores.extend(publish_worlds([world]))

    def submit(self, detector, videos, frames, class_filter, loop):
        from repro.detection.simulated import (
            execute_detect_task,
            merge_detect_results,
            split_detect_task,
        )

        self._ensure_world(detector)
        task, split = split_detect_task(detector, videos, frames, class_filter)
        future: "asyncio.Future[List[list]]" = loop.create_future()
        if task is None:  # every frame served from the parent cache
            future.set_result(merge_detect_results(split, []))
            return future
        inner = loop.run_in_executor(
            self._ensure_pool(), execute_detect_task, task
        )

        def _merge(done: "asyncio.Future") -> None:
            if done.cancelled():
                if not future.done():
                    future.cancel()
                return
            exc = done.exception()  # retrieved even if nobody awaits
            if exc is not None:
                if not future.done():
                    future.set_exception(exc)
                return
            # Merging memoizes the worker's detections in the parent
            # cache even when the awaiter was cancelled mid-flight — the
            # work is done, keeping it warms the next request.
            merged = merge_detect_results(split, done.result())
            if not future.done():
                future.set_result(merged)

        inner.add_done_callback(_merge)
        return future

    def close(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
        stores, self._stores = self._stores, []
        for store in stores:
            store.close()

    def describe(self) -> str:
        ctx = self.context or "default"
        return f"{self.name}(workers={self.max_workers}, context={ctx})"


# -- registry ----------------------------------------------------------------

#: Registered executor factories by name. Each factory takes one optional
#: string argument (the part after ``:`` in a ``"name:arg"`` spec).
DETECTOR_EXECUTORS: Dict[str, Callable[..., DetectorExecutor]] = {}


def register_executor(
    name: str, factory: Callable[..., DetectorExecutor]
) -> None:
    """Register an executor factory under ``name``.

    The plug-in point for real detector backends: a GPU/ONNX runtime
    registers a factory here and ``ServerConfig(executor="my-gpu")``,
    ``repro serve --executor my-gpu`` and fleet configs all resolve it.
    Factories receive the optional ``:arg`` suffix of the spec string
    (e.g. ``"thread:4"`` calls the thread factory with ``"4"``).
    """
    if name in DETECTOR_EXECUTORS:
        raise ConfigError(f"detector executor {name!r} is already registered")
    DETECTOR_EXECUTORS[name] = factory


def _inline_factory(arg: Optional[str] = None) -> InlineDetectorExecutor:
    if arg:
        raise ConfigError(
            f"the inline executor takes no argument (got {arg!r})"
        )
    return InlineDetectorExecutor()


def _parse_workers(arg: str, kind: str) -> int:
    try:
        return int(arg)
    except ValueError:
        raise ConfigError(
            f"{kind} executor argument must be a worker count, got {arg!r}"
        ) from None


def _thread_factory(arg: Optional[str] = None) -> ThreadDetectorExecutor:
    if not arg:
        return ThreadDetectorExecutor()
    return ThreadDetectorExecutor(max_workers=_parse_workers(arg, "thread"))


def _process_factory(arg: Optional[str] = None) -> ProcessDetectorExecutor:
    if not arg:
        return ProcessDetectorExecutor()
    # "process:2" sizes the pool; "process:spawn" / "process:fork" picks
    # the start method (REPRO_MP_CONTEXT still applies when unset).
    if arg.isdigit():
        return ProcessDetectorExecutor(max_workers=_parse_workers(arg, "process"))
    import multiprocessing

    if arg not in multiprocessing.get_all_start_methods():
        raise ConfigError(
            f"process executor argument must be a worker count or start "
            f"method, got {arg!r} "
            f"(methods: {multiprocessing.get_all_start_methods()})"
        )
    return ProcessDetectorExecutor(context=arg)


register_executor("inline", _inline_factory)
register_executor("thread", _thread_factory)
register_executor("process", _process_factory)


def validate_executor_spec(spec: ExecutorSpec) -> None:
    """Raise :class:`~repro.errors.ConfigError` on an unresolvable spec.

    Config validation happens eagerly (``ServerConfig.__post_init__``)
    but executors are built lazily — frozen configs hold the spec, not
    the instance — so a bad name fails at config time, not first flush.
    """
    if spec is None or isinstance(spec, DetectorExecutor):
        return
    if not isinstance(spec, str):
        raise ConfigError(
            "executor must be a registered name, a DetectorExecutor "
            f"instance or None, got {type(spec).__name__}"
        )
    name, _, _arg = spec.partition(":")
    if name not in DETECTOR_EXECUTORS:
        raise ConfigError(
            f"unknown detector executor {name!r} "
            f"(registered: {sorted(DETECTOR_EXECUTORS)})"
        )


def make_executor(spec: ExecutorSpec) -> DetectorExecutor:
    """Resolve a spec to an executor instance.

    ``None`` → inline; a :class:`DetectorExecutor` instance is returned
    as-is (and its lifecycle stays with the caller — servers only close
    executors they built themselves); a string is looked up in the
    registry, with an optional ``:arg`` suffix passed to the factory
    (``"thread:4"``, ``"process:spawn"``).
    """
    validate_executor_spec(spec)
    if spec is None:
        return InlineDetectorExecutor()
    if isinstance(spec, DetectorExecutor):
        return spec
    name, sep, arg = spec.partition(":")
    factory = DETECTOR_EXECUTORS[name]
    return factory(arg) if sep else factory()
