"""Workload files: replayable multi-tenant query arrival schedules.

A workload is a JSON description of queries with arrival times — the
serving analogue of an experiment config. ``repro serve`` replays one
against a dataset; :func:`replay` does the same inside any event loop.

Format (either a bare list or ``{"queries": [...]}``)::

    {
      "queries": [
        {"object": "person", "limit": 5, "arrival": 0.0, "tenant": "a"},
        {"object": "car", "recall": 0.5, "arrival": 0.25, "tenant": "b",
         "method": "random", "run_seed": 3, "deadline": 2.0}
      ]
    }

Per-item keys: ``object`` (required class name); ``limit`` / ``recall`` /
``frame_budget`` / ``cost_budget`` (stopping regime, as in the CLI);
``arrival`` (seconds since replay start, default 0); ``method``,
``run_seed``, ``tenant``, ``deadline`` (seconds after arrival — only the
``"deadline"`` policy reads it), ``batch_size``. Unknown keys are
rejected so a typo cannot silently run a misconfigured workload.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import asdict, dataclass
from typing import List, Optional, Sequence

from repro.errors import ConfigError
from repro.query.query import DistinctObjectQuery

__all__ = ["WorkloadItem", "load_workload", "replay", "save_workload"]


@dataclass(frozen=True)
class WorkloadItem:
    """One scheduled query submission."""

    object: str
    arrival: float = 0.0
    limit: Optional[int] = None
    recall: Optional[float] = None
    frame_budget: Optional[int] = None
    cost_budget: Optional[float] = None
    method: str = "exsample"
    run_seed: int = 0
    tenant: str = "default"
    deadline: Optional[float] = None
    batch_size: Optional[int] = None

    def __post_init__(self) -> None:
        if self.arrival < 0:
            raise ConfigError("arrival must be >= 0")

    def query(self) -> DistinctObjectQuery:
        return DistinctObjectQuery(
            self.object,
            limit=self.limit,
            recall_target=self.recall,
            frame_budget=self.frame_budget,
            cost_budget=self.cost_budget,
        )


def load_workload(path: str) -> List[WorkloadItem]:
    """Parse a workload file into items (arrival order preserved)."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if isinstance(payload, dict):
        payload = payload.get("queries")
    if not isinstance(payload, list):
        raise ConfigError(
            "workload must be a JSON list of queries or an object with a "
            "'queries' list"
        )
    items = []
    valid = set(WorkloadItem.__dataclass_fields__)
    for index, raw in enumerate(payload):
        if not isinstance(raw, dict):
            raise ConfigError(f"workload entry {index} is not an object")
        unknown = set(raw) - valid
        if unknown:
            raise ConfigError(
                f"workload entry {index} has unknown keys {sorted(unknown)}; "
                f"valid keys: {sorted(valid)}"
            )
        if "object" not in raw:
            raise ConfigError(f"workload entry {index} needs an 'object'")
        items.append(WorkloadItem(**raw))
    return items


def save_workload(path: str, items: Sequence[WorkloadItem]) -> None:
    """Write items back out as a workload file."""
    payload = {
        "queries": [
            {k: v for k, v in asdict(item).items() if v is not None}
            for item in items
        ]
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


async def replay(server, items: Sequence[WorkloadItem], time_scale: float = 1.0):
    """Submit a workload to ``server`` honouring arrival times.

    ``time_scale`` stretches (or, at 0, ignores) the arrival schedule:
    ``0`` submits everything as fast as admission allows — the right mode
    for tests and benchmarks. Submission happens in arrival order, but
    the returned handles align with ``items`` (``handles[i]`` belongs to
    ``items[i]`` however the list was ordered); callers typically follow
    with ``await server.drain()``.
    """
    items = list(items)
    loop = asyncio.get_running_loop()
    start = loop.time()
    handles: "List[object | None]" = [None] * len(items)
    order = sorted(range(len(items)), key=lambda i: items[i].arrival)
    for index in order:
        item = items[index]
        if time_scale > 0:
            delay = item.arrival * time_scale - (loop.time() - start)
            if delay > 0:
                await asyncio.sleep(delay)
        handles[index] = await server.submit(
            item.query(),
            method=item.method,
            run_seed=item.run_seed,
            tenant=item.tenant,
            deadline=item.deadline,
            **(
                {"batch_size": item.batch_size}
                if item.batch_size is not None
                else {}
            ),
        )
    return handles
