"""Workload files: replayable multi-tenant query arrival schedules.

A workload is a JSON description of queries with arrival times — the
serving analogue of an experiment config. ``repro serve`` replays one
against a dataset; :func:`replay` does the same inside any event loop.

Format (either a bare list or ``{"queries": [...]}``)::

    {
      "queries": [
        {"object": "person", "limit": 5, "arrival": 0.0, "tenant": "a"},
        {"object": "car", "recall": 0.5, "arrival": 0.25, "tenant": "b",
         "method": "random", "run_seed": 3, "deadline": 2.0}
      ]
    }

Per-item keys: ``object`` (required class name); ``limit`` / ``recall`` /
``frame_budget`` / ``cost_budget`` (stopping regime, as in the CLI);
``arrival`` (seconds since replay start, default 0); ``method``,
``run_seed``, ``tenant``, ``deadline`` (seconds after arrival — only the
``"deadline"`` policy reads it), ``batch_size``. Every key except
``object`` has a back-compat default, so workload files written before a
field existed keep loading unchanged. Unknown keys are rejected so a typo
cannot silently run a misconfigured workload.

Two keys exist for fleet replay (:mod:`repro.serving.fleet`) and are
ignored by single-server :func:`replay`: ``shard`` pins an item to one
shard index, overriding the placement policy (e.g. to reproduce a
placement-sensitive incident), and ``pause_after`` pauses the session
after that many fulfilled steps — checkpointable where it stands, the
way a migration test stages a session mid-flight.

The ``{"queries": [...]}`` object form also accepts a top-level
``"executor"`` key — a detector executor spec string (``"inline"``,
``"thread:2"``, ``"process:spawn"``, …) recorded with the workload so a
replay reproduces the serving mode it was captured under. Read it with
:func:`load_executor`; ``repro serve``/``repro fleet`` use it as the
default when no ``--executor`` flag is given.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import asdict, dataclass
from typing import List, Optional, Sequence

from repro.errors import ConfigError
from repro.query.query import DistinctObjectQuery

__all__ = [
    "WorkloadItem",
    "item_from_json",
    "load_executor",
    "load_workload",
    "replay",
    "save_workload",
]


@dataclass(frozen=True)
class WorkloadItem:
    """One scheduled query submission."""

    object: str
    arrival: float = 0.0
    limit: Optional[int] = None
    recall: Optional[float] = None
    frame_budget: Optional[int] = None
    cost_budget: Optional[float] = None
    method: str = "exsample"
    run_seed: int = 0
    tenant: str = "default"
    deadline: Optional[float] = None
    batch_size: Optional[int] = None
    shard: Optional[int] = None
    pause_after: Optional[int] = None

    def __post_init__(self) -> None:
        if self.arrival < 0:
            raise ConfigError("arrival must be >= 0")
        if self.shard is not None and self.shard < 0:
            raise ConfigError("shard must be >= 0")
        if self.pause_after is not None and self.pause_after < 1:
            raise ConfigError("pause_after must be >= 1")

    def query(self) -> DistinctObjectQuery:
        return DistinctObjectQuery(
            self.object,
            limit=self.limit,
            recall_target=self.recall,
            frame_budget=self.frame_budget,
            cost_budget=self.cost_budget,
        )


def item_from_json(raw: object, index: Optional[int] = None) -> WorkloadItem:
    """Validate one JSON query object into a :class:`WorkloadItem`.

    Shared by workload files and the wire protocol's ``submit`` op, so
    both reject the same typos with the same message. ``index`` labels
    errors when parsing a file.
    """
    where = "workload entry" if index is None else f"workload entry {index}"
    if not isinstance(raw, dict):
        raise ConfigError(f"{where} is not an object")
    valid = set(WorkloadItem.__dataclass_fields__)
    unknown = set(raw) - valid
    if unknown:
        raise ConfigError(
            f"{where} has unknown keys {sorted(unknown)}; "
            f"valid keys: {sorted(valid)}"
        )
    if "object" not in raw:
        raise ConfigError(f"{where} needs an 'object'")
    return WorkloadItem(**raw)


def load_workload(path: str) -> List[WorkloadItem]:
    """Parse a workload file into items (arrival order preserved)."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if isinstance(payload, dict):
        payload = payload.get("queries")
    if not isinstance(payload, list):
        raise ConfigError(
            "workload must be a JSON list of queries or an object with a "
            "'queries' list"
        )
    return [item_from_json(raw, index) for index, raw in enumerate(payload)]


def load_executor(path: str) -> Optional[str]:
    """The workload file's top-level ``"executor"`` spec, if any.

    Mirrors :func:`repro.serving.faults.load_faults`: the key rides in
    the ``{"queries": [...]}`` object form and is validated against the
    executor registry here, so a typo fails at load time rather than
    serving the whole workload on the wrong (default) executor.
    """
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict):
        return None
    spec = payload.get("executor")
    if spec is None:
        return None
    if not isinstance(spec, str):
        raise ConfigError(
            f"workload 'executor' must be a spec string, got "
            f"{type(spec).__name__}"
        )
    from repro.serving.executors import validate_executor_spec

    validate_executor_spec(spec)
    return spec


def save_workload(path: str, items: Sequence[WorkloadItem]) -> None:
    """Write items back out as a workload file."""
    payload = {
        "queries": [
            {k: v for k, v in asdict(item).items() if v is not None}
            for item in items
        ]
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


async def replay(server, items: Sequence[WorkloadItem], time_scale: float = 1.0):
    """Submit a workload to ``server`` honouring arrival times.

    ``time_scale`` stretches (or, at 0, ignores) the arrival schedule:
    ``0`` submits everything as fast as admission allows — the right mode
    for tests and benchmarks. Submission happens in arrival order, but
    the returned handles align with ``items`` (``handles[i]`` belongs to
    ``items[i]`` however the list was ordered); callers typically follow
    with ``await server.drain()``.
    """
    items = list(items)
    loop = asyncio.get_running_loop()
    start = loop.time()
    handles: "List[object | None]" = [None] * len(items)
    order = sorted(range(len(items)), key=lambda i: items[i].arrival)
    for index in order:
        item = items[index]
        if time_scale > 0:
            delay = item.arrival * time_scale - (loop.time() - start)
            if delay > 0:
                await asyncio.sleep(delay)
        handles[index] = await server.submit(
            item.query(),
            method=item.method,
            run_seed=item.run_seed,
            tenant=item.tenant,
            deadline=item.deadline,
            **(
                {"batch_size": item.batch_size}
                if item.batch_size is not None
                else {}
            ),
        )
    return handles
