"""Pluggable scheduling policies for the query server.

A policy decides *order*, never *outcome*: sessions are independent (each
owns its environment, discriminator and RNG streams) and detection is a
pure function of ``(seed, video, frame)``, so any service order produces
the same per-session traces. What a policy does change is latency shape —
which tenant's work is served first when the detector (the scarce shared
resource) is contended. Two decision points consult the policy:

* **admission** — which queued session is admitted when an in-flight slot
  frees up;
* **batch assembly** — the order in which pending detector requests are
  packed into fused batches, which matters when ``max_batch_size`` forces
  a flush to be split across several detector calls.

Policies produce sort keys over :class:`~repro.serving.server
.SessionHandle` objects (ascending; ties broken by submission sequence,
so every policy is FIFO among equals and starvation-free for finite
sessions). Third-party policies register with :func:`register_policy`.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Union

from repro.errors import ConfigError

__all__ = [
    "SCHEDULING_POLICIES",
    "SchedulingPolicy",
    "make_scheduling_policy",
    "register_policy",
]


class SchedulingPolicy:
    """Base class: orders session handles for admission and batching."""

    name = "policy"

    def key(self, handle) -> tuple:
        """Ascending sort key for ``handle`` (lower = served earlier).

        ``handle`` exposes at least ``seq`` (submission sequence number),
        ``tenant``, ``num_samples`` (frames processed so far) and
        ``deadline`` (absolute event-loop time, or None).
        """
        raise NotImplementedError


class RoundRobinPolicy(SchedulingPolicy):
    """First-come, first-served: submission order, lap by lap.

    Because every session awaiting detection resumes on the same fused
    flush, free-running sessions naturally interleave one step per lap —
    the behaviour the old ``run_many`` loop hand-coded.
    """

    name = "round_robin"

    def key(self, handle) -> tuple:
        return (handle.seq,)


class FewestSamplesFirstPolicy(SchedulingPolicy):
    """Serve the session that has processed the fewest frames first.

    A shortest-effort-first heuristic: keeps cheap queries (few samples so
    far, likely to finish soon) ahead of long scans, shrinking mean
    turnaround under mixed workloads.
    """

    name = "fewest_samples"

    def key(self, handle) -> tuple:
        return (handle.num_samples, handle.seq)


class DeadlinePolicy(SchedulingPolicy):
    """Earliest-deadline-first; deadline-less sessions sort last."""

    name = "deadline"

    def key(self, handle) -> tuple:
        deadline = handle.deadline
        return (deadline if deadline is not None else math.inf, handle.seq)


#: Registry of available policies (name -> zero-argument factory).
SCHEDULING_POLICIES: Dict[str, Callable[[], SchedulingPolicy]] = {}


def register_policy(name: str, factory: Callable[[], SchedulingPolicy]) -> None:
    """Register a scheduling policy under ``name`` (duplicates rejected)."""
    if name in SCHEDULING_POLICIES:
        raise ConfigError(f"scheduling policy {name!r} is already registered")
    SCHEDULING_POLICIES[name] = factory


register_policy("round_robin", RoundRobinPolicy)
register_policy("fewest_samples", FewestSamplesFirstPolicy)
register_policy("deadline", DeadlinePolicy)


def make_scheduling_policy(
    spec: Union[str, SchedulingPolicy, None],
) -> SchedulingPolicy:
    """Resolve a policy spec (name, instance or None) to a policy object."""
    if spec is None:
        return RoundRobinPolicy()
    if isinstance(spec, SchedulingPolicy):
        return spec
    factory = SCHEDULING_POLICIES.get(spec)
    if factory is None:
        raise ConfigError(
            f"unknown scheduling policy {spec!r}; "
            f"available: {sorted(SCHEDULING_POLICIES)}"
        )
    return factory()
