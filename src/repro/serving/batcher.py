"""Cross-session detector batching: many tenants, one fused GPU call.

The paper's cost model says detector invocations dominate query cost; a
server running many concurrent searches therefore wants each detector call
to carry as many frames as possible, *regardless of which session asked
for them*. :class:`DetectorBatcher` is that coalescing point: sessions
``await batcher.detect(detector, request, handle)`` with the
:class:`~repro.core.environment.FrameRequest` their search proposed, and
the batcher fuses every compatible pending request into one
``detector.detect_batch`` call, splitting the detections back out to each
awaiting session.

Fusing never changes results: detection is a pure function of
``(seed, video, frame)`` and requests are only fused when they target the
same detector with the same class filter, so a fused call returns exactly
what each per-session call would have.

Flush triggers (first wins):

* **capacity** — pending frames reach ``max_batch_size``;
* **quiescence** — every session that could still submit a request has
  one pending (the server supplies ``outstanding_hint``; when pending
  requests cover it, waiting longer cannot grow the batch);
* **latency** — ``flush_latency`` seconds elapsed since the first pending
  request, a bound on the queueing delay a lone session can suffer while
  arrivals trickle in.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.environment import FrameRequest
from repro.serving.policies import SchedulingPolicy

__all__ = ["BatcherStats", "DetectorBatcher"]


@dataclass
class _PendingDetect:
    """One session's frame request awaiting a fused detector call."""

    detector: object
    request: FrameRequest
    handle: object  # SessionHandle (duck-typed: seq/tenant/num_samples/deadline)
    future: "asyncio.Future[List[list]]"


@dataclass
class BatcherStats:
    """Counters describing the batcher's fusing effectiveness.

    ``detector_calls`` counts fused ``detect_batch`` invocations;
    ``requests`` counts the per-session requests they served. Their ratio
    — and ``mean_occupancy`` (frames per call) — is the whole point of
    cross-session batching: at 8 concurrent sessions a healthy server
    shows ~8 requests per call.
    """

    detector_calls: int = 0
    requests: int = 0
    frames: int = 0
    flushes: int = 0
    max_occupancy: int = 0
    tenant_requests: Dict[str, int] = field(default_factory=dict)
    tenant_frames: Dict[str, int] = field(default_factory=dict)
    tenant_cache_hits: Dict[str, int] = field(default_factory=dict)

    @property
    def mean_occupancy(self) -> float:
        """Mean frames per fused detector call (0.0 before any call)."""
        return self.frames / self.detector_calls if self.detector_calls else 0.0

    @property
    def fusion_ratio(self) -> float:
        """Mean session requests served per detector call."""
        return self.requests / self.detector_calls if self.detector_calls else 0.0


class DetectorBatcher:
    """Coalesces detector requests across sessions into fused batches.

    Parameters
    ----------
    policy:
        Scheduling policy ordering pending requests at flush time (see
        :mod:`repro.serving.policies`). Matters when a flush exceeds
        ``max_batch_size`` and must be split across calls.
    max_batch_size:
        Maximum frames per fused ``detect_batch`` call; reaching it
        flushes immediately. A single request larger than the cap is
        served alone (requests are never split across calls).
    flush_latency:
        Seconds a pending request may wait for company before the batch
        is flushed regardless.
    outstanding_hint:
        Optional callable returning how many sessions could still submit
        a request (the server's count of running sessions). When pending
        requests reach the hint, the batch is flushed without waiting out
        the latency window — with a synchronous detector this makes
        fusing deterministic and latency-free.
    """

    def __init__(
        self,
        policy: SchedulingPolicy,
        max_batch_size: int = 256,
        flush_latency: float = 0.002,
        outstanding_hint: Optional[Callable[[], int]] = None,
    ):
        self.policy = policy
        self.max_batch_size = max(1, int(max_batch_size))
        self.flush_latency = float(flush_latency)
        self._outstanding_hint = outstanding_hint
        self._pending: List[_PendingDetect] = []
        self._pending_frames = 0
        self._timer: Optional[asyncio.TimerHandle] = None
        self.stats = BatcherStats()

    # -- the awaiting side ---------------------------------------------------

    async def detect(
        self, detector, request: FrameRequest, handle
    ) -> List[list]:
        """Detect ``request``'s frames, fused with other pending requests.

        Returns one detection list per requested frame, exactly as the
        environment's blocking ``detect_request`` would.
        """
        if not request.picks:
            return []
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[List[list]]" = loop.create_future()
        self._pending.append(_PendingDetect(detector, request, handle, future))
        self._pending_frames += len(request)
        tenant = getattr(handle, "tenant", "default")
        stats = self.stats
        stats.requests += 1
        stats.tenant_requests[tenant] = stats.tenant_requests.get(tenant, 0) + 1
        stats.tenant_frames[tenant] = (
            stats.tenant_frames.get(tenant, 0) + len(request)
        )
        if self._pending_frames >= self.max_batch_size:
            self._flush()
        elif not self._flush_if_quiescent():
            self._arm_timer(loop)
        return await future

    # -- flush machinery -----------------------------------------------------

    def recheck(self) -> None:
        """Re-evaluate the quiescence trigger after server state changed.

        The server calls this whenever a session finishes, pauses, or is
        admitted — events that change how many sessions could still
        submit, and therefore whether the pending set is already as large
        as it can get.
        """
        self._flush_if_quiescent()

    def _flush_if_quiescent(self) -> bool:
        if not self._pending:
            return False
        hint = self._outstanding_hint() if self._outstanding_hint else None
        if hint is not None and len(self._pending) >= hint:
            self._flush()
            return True
        return False

    def _arm_timer(self, loop: asyncio.AbstractEventLoop) -> None:
        if self._timer is None:
            self._timer = loop.call_later(self.flush_latency, self._timer_fired)

    def _timer_fired(self) -> None:
        self._timer = None
        if self._pending:
            self._flush()

    def flush(self) -> None:
        """Serve every pending request now (used on shutdown/drain)."""
        if self._pending:
            self._flush()

    def _flush(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        pending, self._pending = self._pending, []
        self._pending_frames = 0
        self.stats.flushes += 1
        # Policy order decides who makes it into the first (possibly only)
        # call of each group when capacity splits the flush.
        pending.sort(key=lambda p: self.policy.key(p.handle))
        # Requests fuse only when they share a detector and class filter:
        # detection (and its cache keys) are defined per detector × filter.
        groups: Dict[tuple, List[_PendingDetect]] = {}
        for item in pending:
            group_key = (id(item.detector), item.request.class_filter)
            groups.setdefault(group_key, []).append(item)
        for items in groups.values():
            self._serve_group(items)

    def _serve_group(self, items: List[_PendingDetect]) -> None:
        """One fused call (or several, capacity permitting) for one group."""
        batch: List[_PendingDetect] = []
        batch_frames = 0
        for item in items:
            if batch and batch_frames + len(item.request) > self.max_batch_size:
                self._execute(batch)
                batch, batch_frames = [], 0
            batch.append(item)
            batch_frames += len(item.request)
        if batch:
            self._execute(batch)

    def _execute(self, batch: List[_PendingDetect]) -> None:
        detector = batch[0].detector
        class_filter = batch[0].request.class_filter
        videos: List[int] = []
        frames: List[int] = []
        for item in batch:
            videos.extend(item.request.videos)
            frames.extend(item.request.frames)
        self._attribute_cache_hits(detector, class_filter, batch)
        try:
            detections = detector.detect_batch(
                videos, frames, class_filter=class_filter
            )
        except Exception as exc:
            for item in batch:
                if not item.future.cancelled():
                    item.future.set_exception(exc)
            return
        stats = self.stats
        stats.detector_calls += 1
        stats.frames += len(frames)
        stats.max_occupancy = max(stats.max_occupancy, len(frames))
        offset = 0
        for item in batch:
            n = len(item.request)
            if not item.future.cancelled():
                item.future.set_result(detections[offset : offset + n])
            offset += n

    def _attribute_cache_hits(
        self, detector, class_filter, batch: List[_PendingDetect]
    ) -> None:
        """Count, per tenant, requested frames already memoized.

        Uses the cache's counter-free ``in`` probe, so the attribution
        never perturbs the cache's own hit/miss statistics. Frames two
        tenants request in the *same* fused call count as cached for
        neither — the generation is shared, which is a batching win, not
        a cache hit. Caches whose ``in`` is not an in-process lookup
        (``fast_contains = False``, e.g. the manager-proxy shared cache)
        are skipped: a statistic is not worth one IPC round-trip per
        frame on the event loop.
        """
        cache = getattr(detector, "cache", None)
        if cache is None or not getattr(cache, "fast_contains", False):
            return
        scope = detector.cache_scope() if getattr(cache, "scoped", False) else None
        hits = self.stats.tenant_cache_hits
        for item in batch:
            count = 0
            for video, frame in zip(item.request.videos, item.request.frames, strict=True):
                key = (video, frame, class_filter)
                if (key if scope is None else (scope,) + key) in cache:
                    count += 1
            if count:
                tenant = getattr(item.handle, "tenant", "default")
                hits[tenant] = hits.get(tenant, 0) + count
