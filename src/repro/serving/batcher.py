"""Cross-session detector batching: many tenants, one fused GPU call.

The paper's cost model says detector invocations dominate query cost; a
server running many concurrent searches therefore wants each detector call
to carry as many frames as possible, *regardless of which session asked
for them*. :class:`DetectorBatcher` is that coalescing point: sessions
``await batcher.detect(detector, request, handle)`` with the
:class:`~repro.core.environment.FrameRequest` their search proposed, and
the batcher fuses every compatible pending request into one
``detector.detect_batch`` call, splitting the detections back out to each
awaiting session.

Fusing never changes results: detection is a pure function of
``(seed, video, frame)`` and requests are only fused when they target the
same detector with the same class filter, so a fused call returns exactly
what each per-session call would have.

Flush triggers (first wins):

* **capacity** — pending frames reach ``max_batch_size``;
* **quiescence** — every session that could still submit a request has
  one pending (the server supplies ``outstanding_hint``; when pending
  requests cover it, waiting longer cannot grow the batch);
* **latency** — ``flush_latency`` seconds elapsed since the first pending
  request, a bound on the queueing delay a lone session can suffer while
  arrivals trickle in.

Execution and pipelining
------------------------

*Where* an assembled batch runs is delegated to a
:class:`~repro.serving.executors.DetectorExecutor`. The inline executor
(the default) detects synchronously inside the flush — the historical
behaviour. Off-loop executors (thread/process) turn the batcher into a
double-buffered pipeline: up to ``pipeline_depth`` batches detect
concurrently off-loop while the loop keeps assembling the next one from
resuming sessions; batches assembled beyond that depth are *deferred*
(queued, not dispatched) until a slot frees — back-pressure that costs
no loop stall, because every session owning a deferred request is
already parked on its future. Composition stays decided on the loop at
flush time, so what each batch *computes* is independent of where or
when it executes.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional

from repro.core.environment import FrameRequest
from repro.serving.executors import DetectorExecutor, InlineDetectorExecutor
from repro.serving.policies import SchedulingPolicy

__all__ = ["BatcherStats", "DetectorBatcher"]


@dataclass
class _PendingDetect:
    """One session's frame request awaiting a fused detector call."""

    detector: object
    request: FrameRequest
    handle: object  # SessionHandle (duck-typed: seq/tenant/num_samples/deadline)
    future: "asyncio.Future[List[list]]"


@dataclass(eq=False)  # identity hash: jobs live in the in-flight set
class _BatchJob:
    """One assembled fused call: composition frozen, execution pending.

    Built on the loop at flush time — the videos/frames concatenation,
    the member list and the cache-hit attribution snapshot are all fixed
    here, so dispatch order and executor timing can never change what the
    batch computes or whom it credits.
    """

    detector: object
    class_filter: Optional[str]
    videos: List[int]
    frames: List[int]
    items: List[_PendingDetect]


@dataclass
class BatcherStats:
    """Counters describing the batcher's fusing effectiveness.

    ``detector_calls`` counts fused ``detect_batch`` invocations;
    ``requests`` counts the per-session requests they served. Their ratio
    — and ``mean_occupancy`` (frames per call) — is the whole point of
    cross-session batching: at 8 concurrent sessions a healthy server
    shows ~8 requests per call.
    """

    detector_calls: int = 0
    requests: int = 0
    frames: int = 0
    flushes: int = 0
    max_occupancy: int = 0
    #: Batches handed to an off-loop executor (inline execution counts
    #: in ``detector_calls`` only).
    dispatched_batches: int = 0
    #: Batches that found the pipeline full and waited for a slot.
    deferred_batches: int = 0
    #: Most batches ever detecting concurrently (≤ ``pipeline_depth``).
    peak_in_flight: int = 0
    #: Wall-clock seconds during which ≥1 batch was detecting off-loop —
    #: the union of in-flight intervals, not their sum. Compared against
    #: total wall-clock it measures overlap: loop work done during these
    #: seconds is time pipelining saved.
    offloop_busy_s: float = 0.0
    tenant_requests: Dict[str, int] = field(default_factory=dict)
    tenant_frames: Dict[str, int] = field(default_factory=dict)
    tenant_cache_hits: Dict[str, int] = field(default_factory=dict)

    @property
    def mean_occupancy(self) -> float:
        """Mean frames per fused detector call (0.0 before any call)."""
        return self.frames / self.detector_calls if self.detector_calls else 0.0

    @property
    def fusion_ratio(self) -> float:
        """Mean session requests served per detector call."""
        return self.requests / self.detector_calls if self.detector_calls else 0.0


class DetectorBatcher:
    """Coalesces detector requests across sessions into fused batches.

    Parameters
    ----------
    policy:
        Scheduling policy ordering pending requests at flush time (see
        :mod:`repro.serving.policies`). Matters when a flush exceeds
        ``max_batch_size`` and must be split across calls.
    max_batch_size:
        Maximum frames per fused ``detect_batch`` call; reaching it
        flushes immediately. A single request larger than the cap is
        served alone (requests are never split across calls).
    flush_latency:
        Seconds a pending request may wait for company before the batch
        is flushed regardless.
    outstanding_hint:
        Optional callable returning how many sessions could still submit
        a request (the server's count of running sessions). When pending
        requests reach the hint, the batch is flushed without waiting out
        the latency window — with a synchronous detector this makes
        fusing deterministic and latency-free. Sessions whose requests
        are already dispatched or deferred are subtracted from the hint:
        they cannot submit again until their batch resolves, so waiting
        for them would stall the assembling buffer forever.
    executor:
        A :class:`~repro.serving.executors.DetectorExecutor` deciding
        where assembled batches run (default: inline, the historical
        synchronous behaviour). The batcher only uses the executor; the
        server owns its lifecycle.
    pipeline_depth:
        Maximum batches detecting off-loop concurrently (ignored by
        inline executors). 2 is the classic double buffer: batch N
        detects while batch N+1 assembles.
    """

    def __init__(
        self,
        policy: SchedulingPolicy,
        max_batch_size: int = 256,
        flush_latency: float = 0.002,
        outstanding_hint: Optional[Callable[[], int]] = None,
        executor: Optional[DetectorExecutor] = None,
        pipeline_depth: int = 2,
    ):
        self.policy = policy
        self.max_batch_size = max(1, int(max_batch_size))
        self.flush_latency = float(flush_latency)
        self._outstanding_hint = outstanding_hint
        self.executor = executor if executor is not None else InlineDetectorExecutor()
        self.pipeline_depth = max(1, int(pipeline_depth))
        self._pending: List[_PendingDetect] = []
        self._pending_frames = 0
        self._timer: Optional[asyncio.TimerHandle] = None
        #: Jobs currently executing off-loop (≤ pipeline_depth).
        self._in_flight: "set[_BatchJob]" = set()
        #: Assembled jobs waiting for an in-flight slot (back-pressure
        #: buffer; bounded in practice by the server's session cap —
        #: every deferred request's session is parked on its future).
        self._deferred: "Deque[_BatchJob]" = deque()
        #: Requests inside dispatched/deferred jobs: their sessions are
        #: blocked and must not be awaited by the quiescence trigger.
        self._blocked_requests = 0
        self._busy_since: Optional[float] = None
        self._settle_waiters: List["asyncio.Future[None]"] = []
        self.stats = BatcherStats()

    # -- the awaiting side ---------------------------------------------------

    async def detect(
        self, detector, request: FrameRequest, handle
    ) -> List[list]:
        """Detect ``request``'s frames, fused with other pending requests.

        Returns one detection list per requested frame, exactly as the
        environment's blocking ``detect_request`` would.
        """
        if not request.picks:
            return []
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[List[list]]" = loop.create_future()
        self._pending.append(_PendingDetect(detector, request, handle, future))
        self._pending_frames += len(request)
        tenant = getattr(handle, "tenant", "default")
        stats = self.stats
        stats.requests += 1
        stats.tenant_requests[tenant] = stats.tenant_requests.get(tenant, 0) + 1
        stats.tenant_frames[tenant] = (
            stats.tenant_frames.get(tenant, 0) + len(request)
        )
        if self._pending_frames >= self.max_batch_size:
            self._flush()
        elif not self._flush_if_quiescent():
            self._arm_timer(loop)
        return await future

    # -- flush machinery -----------------------------------------------------

    def recheck(self) -> None:
        """Re-evaluate the quiescence trigger after server state changed.

        The server calls this whenever a session finishes, pauses, or is
        admitted — events that change how many sessions could still
        submit, and therefore whether the pending set is already as large
        as it can get.
        """
        self._flush_if_quiescent()

    def _flush_if_quiescent(self) -> bool:
        if not self._pending:
            return False
        hint = self._outstanding_hint() if self._outstanding_hint else None
        if hint is None:
            return False
        # Sessions blocked inside in-flight/deferred batches cannot add
        # to the pending set; the assembling buffer is quiescent once the
        # *free* sessions are all accounted for.
        if len(self._pending) >= hint - self._blocked_requests:
            self._flush()
            return True
        return False

    def _arm_timer(self, loop: asyncio.AbstractEventLoop) -> None:
        if self._timer is None:
            self._timer = loop.call_later(self.flush_latency, self._timer_fired)

    def _timer_fired(self) -> None:
        self._timer = None
        if self._pending:
            self._flush()

    def flush(self) -> None:
        """Serve every pending request now (used on shutdown/drain)."""
        if self._pending:
            self._flush()

    def _flush(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        pending, self._pending = self._pending, []
        self._pending_frames = 0
        self.stats.flushes += 1
        # Policy order decides who makes it into the first (possibly only)
        # call of each group when capacity splits the flush.
        pending.sort(key=lambda p: self.policy.key(p.handle))
        # Requests fuse only when they share a detector and class filter:
        # detection (and its cache keys) are defined per detector × filter.
        groups: Dict[tuple, List[_PendingDetect]] = {}
        for item in pending:
            group_key = (id(item.detector), item.request.class_filter)
            groups.setdefault(group_key, []).append(item)
        for items in groups.values():
            self._serve_group(items)

    def _serve_group(self, items: List[_PendingDetect]) -> None:
        """One fused call (or several, capacity permitting) for one group."""
        batch: List[_PendingDetect] = []
        batch_frames = 0
        for item in items:
            if batch and batch_frames + len(item.request) > self.max_batch_size:
                self._execute(batch)
                batch, batch_frames = [], 0
            batch.append(item)
            batch_frames += len(item.request)
        if batch:
            self._execute(batch)

    def _execute(self, batch: List[_PendingDetect]) -> None:
        """Freeze one batch's composition and hand it to the executor."""
        detector = batch[0].detector
        class_filter = batch[0].request.class_filter
        videos: List[int] = []
        frames: List[int] = []
        for item in batch:
            videos.extend(item.request.videos)
            frames.extend(item.request.frames)
        # Attribution snapshots here, at assembly — before this batch (or
        # any batch dispatched after it) can touch the cache.
        self._attribute_cache_hits(detector, class_filter, batch)
        job = _BatchJob(detector, class_filter, videos, frames, batch)
        self._blocked_requests += len(batch)
        executor = self.executor
        if not executor.off_loop:
            try:
                detections = executor.run(
                    detector, videos, frames, class_filter
                )
            except Exception as exc:
                self._complete(job, None, exc)
                return
            self._complete(job, detections, None)
            return
        if len(self._in_flight) >= self.pipeline_depth:
            self._deferred.append(job)
            self.stats.deferred_batches += 1
            return
        self._dispatch(job)

    def _dispatch(self, job: _BatchJob) -> None:
        """Start one assembled job on the off-loop executor."""
        loop = asyncio.get_running_loop()
        stats = self.stats
        if not self._in_flight:
            self._busy_since = loop.time()
        self._in_flight.add(job)
        stats.dispatched_batches += 1
        stats.peak_in_flight = max(stats.peak_in_flight, len(self._in_flight))
        try:
            inner = self.executor.submit(
                job.detector, job.videos, job.frames, job.class_filter, loop
            )
        except Exception as exc:
            self._in_flight.discard(job)
            self._complete(job, None, exc)
            self._refill_and_settle(loop)
            return
        inner.add_done_callback(
            lambda fut, job=job: self._on_job_done(job, fut)
        )

    def _on_job_done(self, job: _BatchJob, fut: "asyncio.Future") -> None:
        """Executor callback (runs on the loop): distribute and refill."""
        loop = asyncio.get_running_loop()
        self._in_flight.discard(job)
        if not self._in_flight and self._busy_since is not None:
            self.stats.offloop_busy_s += max(
                0.0, loop.time() - self._busy_since
            )
            self._busy_since = None
        if fut.cancelled():
            self._blocked_requests -= len(job.items)
            for item in job.items:
                if not item.future.done():
                    item.future.cancel()
        else:
            exc = fut.exception()  # always retrieved, even if all awaiters left
            self._complete(job, None if exc is not None else fut.result(), exc)
        self._refill_and_settle(loop)

    def _refill_and_settle(self, loop: asyncio.AbstractEventLoop) -> None:
        while self._deferred and len(self._in_flight) < self.pipeline_depth:
            self._dispatch(self._deferred.popleft())
        if not self._in_flight and not self._deferred:
            waiters, self._settle_waiters = self._settle_waiters, []
            for waiter in waiters:
                if not waiter.done():
                    waiter.set_result(None)

    def _complete(
        self, job: _BatchJob, detections: Optional[List[list]], exc
    ) -> None:
        """Resolve one finished job's member futures and counters."""
        self._blocked_requests -= len(job.items)
        if exc is not None:
            for item in job.items:
                if not item.future.cancelled():
                    item.future.set_exception(exc)
            return
        stats = self.stats
        stats.detector_calls += 1
        stats.frames += len(job.frames)
        stats.max_occupancy = max(stats.max_occupancy, len(job.frames))
        offset = 0
        for item in job.items:
            n = len(item.request)
            if not item.future.cancelled():
                item.future.set_result(detections[offset : offset + n])
            offset += n

    async def settle(self) -> None:
        """Wait until no batch is in flight or deferred.

        Drain and shutdown call this after :meth:`flush` so off-loop
        detect futures resolve (and their sessions observe the results)
        before the executor is released. Immediate no-op under the inline
        executor.
        """
        while self._in_flight or self._deferred:
            waiter: "asyncio.Future[None]" = (
                asyncio.get_running_loop().create_future()
            )
            self._settle_waiters.append(waiter)
            await waiter

    def _attribute_cache_hits(
        self, detector, class_filter, batch: List[_PendingDetect]
    ) -> None:
        """Count, per tenant, requested frames memoized *at assembly*.

        The snapshot is taken once per batch, under a single cache-lock
        hold (``contains_many``), at the moment the batch's composition
        freezes. With off-loop executors another batch's results can land
        in the cache at any wall-clock instant; per-key ``in`` probes
        could straddle such a landing and attribute a half-updated view.
        Counter-free probes keep the cache's own hit/miss statistics
        unperturbed. Frames two tenants request in the *same* fused call
        count as cached for neither — the generation is shared, which is
        a batching win, not a cache hit. Caches whose probe is not an
        in-process lookup (``fast_contains = False``, e.g. the
        manager-proxy shared cache) are skipped: a statistic is not worth
        an IPC round-trip on the event loop.
        """
        cache = getattr(detector, "cache", None)
        if cache is None or not getattr(cache, "fast_contains", False):
            return
        scope = detector.cache_scope() if getattr(cache, "scoped", False) else None
        keys = []
        for item in batch:
            for video, frame in zip(
                item.request.videos, item.request.frames, strict=True
            ):
                key = (video, frame, class_filter)
                keys.append(key if scope is None else (scope,) + key)
        probe = getattr(cache, "contains_many", None)
        if probe is not None:
            present = probe(keys)
        else:  # duck-typed cache without the batched probe
            present = [key in cache for key in keys]
        hits = self.stats.tenant_cache_hits
        offset = 0
        for item in batch:
            n = len(item.request)
            count = sum(present[offset : offset + n])
            offset += n
            if count:
                tenant = getattr(item.handle, "tenant", "default")
                hits[tenant] = hits.get(tenant, 0) + count
