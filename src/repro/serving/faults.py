"""Declarative fault injection for the serving fleet (chaos harness).

Fault tolerance that is never exercised is fault tolerance that does not
exist, so the fleet ships its own chaos harness: a :class:`FaultPlan` is
a picklable list of :class:`FaultSpec` entries installed through
``FleetConfig(faults=...)`` (or a top-level ``"faults"`` key in a
workload file) and shipped to each shard inside its ``_ShardSpec``. Two
fault families cover the failure modes supervision must survive:

* **process faults** trigger after ``after_steps`` fulfilled steps on
  the shard — ``kill`` delivers SIGKILL to the shard's own process (a
  hard crash: no drain, no goodbye frame), ``stall`` blocks the shard's
  event loop forever (the process stays alive but stops answering
  heartbeats — the hung-shard case, detected only by missed pings);
* **wire faults** intercept the shard's *outbound* frames —
  ``drop_frame`` swallows matching frames, ``corrupt_frame`` replaces
  them with undecodable bytes (still newline-terminated, so the stream
  stays framed), ``delay_frame`` holds them back for ``delay`` seconds.
  ``op`` matches the frame's ``op`` or ``event`` field (None matches
  any), and each spec fires at most ``count`` times.

Process faults default to firing once per fleet: when supervision
relaunches a killed shard, non-``repeat`` faults are pruned from the
relaunched shard's spec, so a scripted crash does not turn into a
crash loop that trips the circuit breaker.

The headline consumer is ``tests/test_fleet_faults.py``: a mid-search
SIGKILL recovers through the router's checkpoint table and the final
outcomes stay byte-identical to solo ``engine.run``.
"""

from __future__ import annotations

import json
import os
import signal
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Tuple, Union

from repro.errors import ConfigError

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "load_faults",
]

#: Process faults happen after N fulfilled steps; wire faults act on
#: matching outbound frames.
FAULT_KINDS = ("kill", "stall", "drop_frame", "corrupt_frame", "delay_frame")
_PROCESS_KINDS = ("kill", "stall")
_WIRE_KINDS = ("drop_frame", "corrupt_frame", "delay_frame")


@dataclass(frozen=True)
class FaultSpec:
    """One scripted fault. Picklable; validated on construction."""

    kind: str
    #: Shard index the fault arms on; None arms it on every shard.
    shard: Optional[int] = None
    #: Process faults: trigger once the shard has fulfilled this many
    #: steps (across all its sessions). Must be >= 1 — a shard that
    #: never steps never triggers.
    after_steps: int = 1
    #: Wire faults: match outbound frames whose ``op`` or ``event``
    #: equals this (None matches every frame).
    op: Optional[str] = None
    #: Wire faults: how many matching frames to affect.
    count: int = 1
    #: delay_frame only: seconds to hold a matching frame back.
    delay: float = 0.05
    #: Re-arm on a relaunched shard. Default False: a scripted crash
    #: fires once per fleet, not once per restart.
    repeat: bool = False

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{', '.join(FAULT_KINDS)}"
            )
        if self.shard is not None and self.shard < 0:
            raise ConfigError("fault shard must be >= 0")
        if self.kind in _PROCESS_KINDS and self.after_steps < 1:
            raise ConfigError("after_steps must be >= 1")
        if self.count < 1:
            raise ConfigError("fault count must be >= 1")
        if self.delay < 0:
            raise ConfigError("fault delay must be >= 0")

    @classmethod
    def from_json(cls, raw: dict) -> "FaultSpec":
        if not isinstance(raw, dict):
            raise ConfigError(f"fault entries must be objects, got {raw!r}")
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(raw) - known
        if unknown:
            raise ConfigError(
                f"unknown fault fields {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        return cls(**raw)


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, picklable collection of :class:`FaultSpec` entries."""

    specs: Tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))
        for spec in self.specs:
            if not isinstance(spec, FaultSpec):
                raise ConfigError(
                    f"FaultPlan entries must be FaultSpec, got {spec!r}"
                )

    def __bool__(self) -> bool:
        return bool(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    @classmethod
    def from_json(cls, raw) -> "FaultPlan":
        if not isinstance(raw, (list, tuple)):
            raise ConfigError("'faults' must be a list of fault objects")
        return cls(tuple(FaultSpec.from_json(entry) for entry in raw))

    def for_shard(self, index: int) -> Tuple[FaultSpec, ...]:
        """The specs armed on shard ``index``."""
        return tuple(
            spec for spec in self.specs
            if spec.shard is None or spec.shard == index
        )

    def surviving_relaunch(self, index: int) -> Tuple[FaultSpec, ...]:
        """The specs a *relaunched* shard ``index`` re-arms (repeat=True)."""
        return tuple(spec for spec in self.for_shard(index) if spec.repeat)


def load_faults(path: Union[str, Path]) -> Optional[FaultPlan]:
    """The :class:`FaultPlan` in a workload file's ``"faults"`` key.

    Returns None when the file is a bare query list or has no faults —
    the common case; ``repro fleet`` calls this on every workload.
    """
    payload = json.loads(Path(path).read_text())
    if isinstance(payload, dict) and payload.get("faults"):
        return FaultPlan.from_json(payload["faults"])
    return None


# ---------------------------------------------------------------------------
# Shard-side installation.
# ---------------------------------------------------------------------------


class _StepFaults:
    """Counts fulfilled steps process-wide and triggers process faults."""

    def __init__(self, specs):
        self.specs = sorted(
            (s for s in specs if s.kind in _PROCESS_KINDS),
            key=lambda s: s.after_steps,
        )
        self.steps = 0

    def __call__(self, handle) -> None:
        self.steps += 1
        while self.specs and self.steps >= self.specs[0].after_steps:
            spec = self.specs.pop(0)
            if spec.kind == "kill":
                # A hard crash: no flush, no goodbye. SIGKILL cannot be
                # caught, so this is exactly what a OOM-kill or machine
                # loss looks like to the router.
                os.kill(os.getpid(), signal.SIGKILL)
            else:  # stall: wedge the event loop; stay alive but silent.
                while True:  # pragma: no cover - killed by the router
                    time.sleep(60)


@dataclass
class WireFaults:
    """Mutable wire-fault state: which outbound frames to mangle."""

    specs: list = field(default_factory=list)
    dropped: int = 0
    corrupted: int = 0
    delayed: int = 0

    def outbound(self, frame: dict):
        """The action for one outbound frame.

        Returns None (send as-is), ``"drop"``, ``"corrupt"``, or a float
        delay in seconds. First matching spec wins; specs expire after
        ``count`` firings.
        """
        label = frame.get("op") or frame.get("event")
        for index, (spec, remaining) in enumerate(self.specs):
            if spec.op is not None and spec.op != label:
                continue
            if remaining <= 1:
                del self.specs[index]
            else:
                self.specs[index] = (spec, remaining - 1)
            if spec.kind == "drop_frame":
                self.dropped += 1
                return "drop"
            if spec.kind == "corrupt_frame":
                self.corrupted += 1
                return "corrupt"
            self.delayed += 1
            return spec.delay
        return None


def install_faults(net_server, specs) -> None:
    """Arm ``specs`` on a :class:`~repro.serving.net.NetServer`.

    Process faults hook the query server's per-step callback; wire
    faults attach to the server's outbound connection queues.
    """
    specs = tuple(specs)
    step_specs = [s for s in specs if s.kind in _PROCESS_KINDS]
    wire_specs = [s for s in specs if s.kind in _WIRE_KINDS]
    if step_specs:
        net_server.query_server.on_step = _StepFaults(step_specs)
    if wire_specs:
        net_server._wire_faults = WireFaults(
            [(spec, spec.count) for spec in wire_specs]
        )
