"""The asyncio query server: many concurrent searches, one detector.

:class:`QueryServer` runs any number of :class:`~repro.query.session
.QuerySession` steppers on one event loop, treating the detector as the
scarce shared resource the paper says it is. Each admitted session drives
the request/fulfil split — propose a frame batch, await detection, ingest,
record — and a :class:`~repro.serving.batcher.DetectorBatcher` coalesces
the detection waits across sessions into fused ``detect_batch`` calls over
the engine's shared :class:`~repro.detection.DetectionCache`.

Correctness is scheduling-independent: sessions are isolated (own
environment, discriminator, RNG streams) and detection is pure, so a
session served by a loaded server produces a trace byte-identical to the
same ``(query, method, run_seed)`` run solo. The test suite asserts this
for every registered search method, and ``QueryEngine.run_many`` is now a
thin blocking wrapper over this server.

Admission control and backpressure: at most ``max_in_flight`` sessions
step concurrently; further submissions wait in a policy-ordered admission
queue bounded at ``queue_capacity``; when that is full too, ``submit``
either awaits room (backpressure) or raises
:class:`~repro.errors.ServerOverloadedError` (``wait=False``).

Typical use::

    async def main():
        server = engine.serve(max_in_flight=8)
        handles = [await server.submit(q, tenant="alice") for q in queries]
        outcomes = [await h.result() for h in handles]
        print(server.stats().describe())

    asyncio.run(main())
"""

from __future__ import annotations

import asyncio
import heapq
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.environment import batched_observe
from repro.detection.cache import CacheInfo
from repro.errors import QueryError, ServerDrainingError, ServerOverloadedError
from repro.serving.batcher import BatcherStats, DetectorBatcher
from repro.serving.executors import (
    DetectorExecutor,
    ExecutorSpec,
    make_executor,
    validate_executor_spec,
)
from repro.serving.policies import SchedulingPolicy, make_scheduling_policy

__all__ = [
    "LatencyStats",
    "QueryServer",
    "ServerConfig",
    "ServerStats",
    "SessionHandle",
    "TenantStats",
    "serve_sessions",
]


@dataclass(frozen=True)
class ServerConfig:
    """Knobs of a :class:`QueryServer`.

    Attributes
    ----------
    max_in_flight:
        Maximum sessions stepping concurrently (admission control).
    queue_capacity:
        Maximum sessions waiting for admission; beyond it ``submit``
        backpressures (or raises with ``wait=False``).
    max_batch_size:
        Maximum frames per fused detector call.
    flush_latency:
        Seconds a pending detector request may wait for company.
    policy:
        Scheduling policy name or instance (``"round_robin"``,
        ``"fewest_samples"``, ``"deadline"``, or a registered plug-in);
        orders admission and batch assembly.
    batching:
        When False, every session calls the detector itself (per-session
        stepping — the pre-server behaviour). Outcomes are identical
        either way; only detector call counts and latency change.
    executor:
        Where fused detector calls run: a registered name (``"inline"``,
        ``"thread"``, ``"process"``, optionally ``"name:arg"`` like
        ``"thread:4"`` or ``"process:spawn"``), or a
        :class:`~repro.serving.executors.DetectorExecutor` instance
        (whose lifecycle then stays with the caller). Off-loop executors
        overlap detection with session CPU work; outcomes are identical
        under every executor.
    pipeline_depth:
        Maximum fused batches detecting off-loop concurrently (the
        double buffer; ignored by the inline executor).
    """

    max_in_flight: int = 8
    queue_capacity: int = 64
    max_batch_size: int = 256
    flush_latency: float = 0.002
    policy: Union[str, SchedulingPolicy] = "round_robin"
    batching: bool = True
    executor: ExecutorSpec = "inline"
    pipeline_depth: int = 2

    def __post_init__(self) -> None:
        if self.max_in_flight < 1:
            raise QueryError("max_in_flight must be >= 1")
        if self.queue_capacity < 0:
            raise QueryError("queue_capacity must be >= 0")
        if self.pipeline_depth < 1:
            raise QueryError("pipeline_depth must be >= 1")
        validate_executor_spec(self.executor)


@dataclass(frozen=True)
class LatencyStats:
    """Percentiles (seconds) over one latency population."""

    count: int
    p50: float
    p90: float
    p99: float
    mean: float

    @staticmethod
    def of(samples) -> "LatencyStats":
        arr = np.asarray(list(samples), dtype=float)
        if arr.size == 0:
            return LatencyStats(0, 0.0, 0.0, 0.0, 0.0)
        p50, p90, p99 = np.percentile(arr, [50, 90, 99])
        return LatencyStats(
            int(arr.size), float(p50), float(p90), float(p99), float(arr.mean())
        )


@dataclass(frozen=True)
class TenantStats:
    """Per-tenant slice of :meth:`QueryServer.stats`."""

    tenant: str
    sessions: int
    finished: int
    samples: int
    results: int
    detector_requests: int
    detector_frames: int
    cache_hits: int
    detect_wait: LatencyStats
    turnaround: LatencyStats


@dataclass(frozen=True)
class ServerStats:
    """A point-in-time snapshot of server behaviour.

    ``detector_calls`` counts fused calls issued by the batcher plus
    direct calls made with batching disabled; ``batch_occupancy`` is mean
    frames per fused call. ``cache`` is the engine detection cache's
    :class:`~repro.detection.cache.CacheInfo` (with its per-scope
    breakdown) when the server has an engine with a cache attached.
    """

    submitted: int
    finished: int
    paused: int
    failed: int
    in_flight: int
    queued: int
    draining: bool
    detector_calls: int
    detector_frames: int
    batch_occupancy: float
    fusion_ratio: float
    batcher: BatcherStats
    per_tenant: Dict[str, TenantStats]
    detect_wait: LatencyStats
    turnaround: LatencyStats
    cache: Optional[CacheInfo] = None
    #: Name of the detector executor fused calls ran on.
    executor: str = "inline"

    def describe(self) -> str:
        """A compact human-readable multi-line summary."""
        b = self.batcher
        lines = [
            (
                f"sessions: {self.finished}/{self.submitted} finished "
                f"({self.paused} paused, {self.failed} failed, "
                f"{self.in_flight} in flight, {self.queued} queued)"
                + (" [draining]" if self.draining else "")
            ),
            (
                f"detector: {self.detector_calls} calls, "
                f"{self.detector_frames} frames, "
                f"occupancy {self.batch_occupancy:.1f} frames/call, "
                f"fusion {self.fusion_ratio:.1f} requests/call"
            ),
            (
                f"executor: {self.executor} — "
                f"{b.dispatched_batches} dispatched, "
                f"{b.deferred_batches} deferred, "
                f"peak depth {b.peak_in_flight}, "
                f"off-loop busy {b.offloop_busy_s * 1e3:.1f}ms"
            ),
            (
                f"latency: detect-wait p50 {self.detect_wait.p50 * 1e3:.2f}ms "
                f"p99 {self.detect_wait.p99 * 1e3:.2f}ms; turnaround p50 "
                f"{self.turnaround.p50 * 1e3:.1f}ms p99 "
                f"{self.turnaround.p99 * 1e3:.1f}ms"
            ),
        ]
        if self.cache is not None:
            lines.append(f"cache: {self.cache}")
        for tenant in sorted(self.per_tenant):
            t = self.per_tenant[tenant]
            lines.append(
                f"tenant {tenant}: {t.finished}/{t.sessions} sessions, "
                f"{t.samples} samples, {t.results} results, "
                f"{t.detector_requests} detector requests "
                f"({t.detector_frames} frames, {t.cache_hits} cached), "
                f"detect-wait p50 {t.detect_wait.p50 * 1e3:.2f}ms"
            )
        return "\n".join(lines)


class SessionHandle:
    """The server-side face of one submitted session.

    Returned by :meth:`QueryServer.submit`. Await :meth:`result` for the
    finished :class:`~repro.query.engine.QueryOutcome`, or :meth:`wait`
    for the terminal state (``"finished"``, ``"paused"``, ``"failed"``).
    :meth:`pause` stops the session cooperatively at its next batch
    boundary — the underlying :class:`~repro.query.session.QuerySession`
    is then safe to ``checkpoint()`` and resubmit (here or elsewhere).
    """

    def __init__(
        self,
        session,
        seq: int,
        tenant: str,
        deadline: Optional[float],
        pause_after: Optional[int],
    ):
        self.session = session
        self.seq = seq
        self.tenant = tenant
        self.deadline = deadline
        self.pause_after = pause_after
        self.state = "queued"
        self.steps = 0
        self.error: Optional[BaseException] = None
        # Optional callable(handle, SearchStep) invoked after every
        # fulfilled step — the hook the wire front-end uses to stream
        # ResultFound/SampleBatch events without polling.
        self.event_sink = None
        self.submitted_at: Optional[float] = None
        self.started_at: Optional[float] = None
        self.ended_at: Optional[float] = None
        self.detect_waits: List[float] = []
        # Per-session detector accounting, maintained for the fused and
        # the direct (batching=False) paths alike, so per-tenant stats
        # stay truthful in either mode.
        self.detector_requests = 0
        self.detector_frames = 0
        self._pause_requested = False
        self._done: Optional[asyncio.Future] = None

    # -- introspection -------------------------------------------------------

    @property
    def method(self) -> str:
        return self.session.method

    @property
    def query(self):
        return self.session.query

    @property
    def num_samples(self) -> int:
        return self.session.num_samples

    @property
    def num_results(self) -> int:
        return self.session.num_results

    @property
    def done(self) -> bool:
        return self.state in ("finished", "paused", "failed")

    # -- control -------------------------------------------------------------

    def pause(self) -> None:
        """Stop the session at its next batch boundary (cooperative)."""
        self._pause_requested = True

    async def wait(self) -> str:
        """Await the terminal state: 'finished', 'paused' or 'failed'."""
        if not self.done:
            assert self._done is not None, "handle not yet registered"
            await asyncio.shield(self._done)
        return self.state

    async def result(self):
        """Await completion and return the session's QueryOutcome.

        Raises the session's error if it failed, and :class:`QueryError`
        if the session was paused instead of finishing (resubmit it to
        resume).
        """
        state = await self.wait()
        if state == "failed":
            assert self.error is not None
            raise self.error
        if state == "paused":
            raise QueryError(
                "session was paused before finishing; checkpoint/resubmit "
                "it to resume"
            )
        return self.session.outcome()

    # -- server internals ----------------------------------------------------

    def _register(self, loop: asyncio.AbstractEventLoop) -> None:
        self._done = loop.create_future()
        self.submitted_at = loop.time()

    def _finish(self, state: str, loop: asyncio.AbstractEventLoop) -> None:
        self.state = state
        self.ended_at = loop.time()
        if self._done is not None and not self._done.done():
            self._done.set_result(state)


class QueryServer:
    """Runs many query sessions concurrently over one engine's detector.

    Built by :meth:`repro.query.engine.QueryEngine.serve`. All methods
    must be called from within a running event loop (``asyncio.run``);
    the blocking convenience path is :func:`serve_sessions` /
    ``QueryEngine.run_many``.
    """

    def __init__(self, engine=None, config: Optional[ServerConfig] = None):
        self.engine = engine
        self.config = config or ServerConfig()
        self.policy = make_scheduling_policy(self.config.policy)
        # An executor built from a spec string belongs to this server
        # (closed by aclose); a passed-in instance stays with its owner,
        # so one pool can serve several servers or test fixtures.
        self._owns_executor = not isinstance(
            self.config.executor, DetectorExecutor
        )
        self.executor = make_executor(self.config.executor)
        self._batcher = DetectorBatcher(
            self.policy,
            max_batch_size=self.config.max_batch_size,
            flush_latency=self.config.flush_latency,
            outstanding_hint=self._running_count,
            executor=self.executor,
            pipeline_depth=self.config.pipeline_depth,
        )
        self._seq = 0
        self._handles: List[SessionHandle] = []
        self._running: "set[SessionHandle]" = set()
        self._waiting: List[Tuple[tuple, int, SessionHandle]] = []
        self._space_waiters: Deque[asyncio.Future] = deque()
        self._tasks: Dict[SessionHandle, asyncio.Task] = {}
        self._direct_detector_calls = 0
        self._direct_detector_frames = 0
        self._draining = False
        # Optional callable(handle) invoked after every fulfilled step,
        # server-wide — the seam fault injection (repro.serving.faults)
        # uses to crash or stall a shard after N steps. May not await.
        self.on_step = None

    # -- submission ----------------------------------------------------------

    async def submit(
        self,
        query=None,
        *,
        session=None,
        method: str = "exsample",
        run_seed: int = 0,
        tenant: str = "default",
        deadline: Optional[float] = None,
        pause_after: Optional[int] = None,
        wait: bool = True,
        event_sink=None,
        **searcher_kwargs,
    ) -> SessionHandle:
        """Submit one query (or a pre-built/restored session) for serving.

        Exactly one of ``query`` / ``session`` must be given; a query is
        opened through the engine exactly as ``engine.session`` would, so
        serving changes nothing about how a search is configured.
        ``deadline`` (seconds from submission) only matters to the
        ``"deadline"`` policy; ``pause_after`` pauses the session after
        that many fulfilled steps (e.g. to checkpoint it mid-flight).
        ``wait=False`` turns queue backpressure into
        :class:`~repro.errors.ServerOverloadedError`. ``event_sink`` is
        an optional callable ``(handle, SearchStep)`` invoked after every
        fulfilled step — how the wire front-end streams events. A
        draining server (see :meth:`drain_gracefully`) refuses new
        sessions with :class:`~repro.errors.ServerDrainingError`.
        """
        if self._draining:
            raise ServerDrainingError(
                "server is draining: it no longer admits new sessions"
            )
        if (query is None) == (session is None):
            raise QueryError("submit exactly one of query= or session=")
        if session is None:
            if self.engine is None:
                raise QueryError(
                    "this server has no engine; submit pre-built sessions"
                )
            session = self.engine.session(
                query, method=method, run_seed=run_seed, **searcher_kwargs
            )
        elif searcher_kwargs or method != "exsample" or run_seed != 0:
            # A pre-built session is already fully configured; silently
            # dropping overrides would run it with settings the caller
            # believes they changed.
            raise QueryError(
                "method/run_seed/searcher kwargs cannot be combined with "
                "session=; configure them when the session is created"
            )
        loop = asyncio.get_running_loop()
        handle = SessionHandle(
            session,
            seq=self._seq,
            tenant=tenant,
            deadline=None if deadline is None else loop.time() + deadline,
            pause_after=pause_after,
        )
        handle.event_sink = event_sink
        self._seq += 1
        handle._register(loop)
        while len(self._waiting) >= self.config.queue_capacity and not (
            len(self._running) < self.config.max_in_flight
            and not self._waiting
        ):
            if not wait:
                raise ServerOverloadedError(
                    f"admission queue full ({self.config.queue_capacity} "
                    f"waiting, {len(self._running)} in flight)"
                )
            space: asyncio.Future = loop.create_future()
            self._space_waiters.append(space)
            await space
            if self._draining:
                # Drain began while this submitter waited for room; its
                # session was never accepted, so refuse it like any other
                # post-drain submission.
                raise ServerDrainingError(
                    "server began draining while this submission waited "
                    "for admission-queue room"
                )
        self._handles.append(handle)
        heapq.heappush(
            self._waiting, (self.policy.key(handle), handle.seq, handle)
        )
        self._pump(loop)
        return handle

    async def drain(self) -> None:
        """Wait until every submitted session reached a terminal state."""
        while True:
            active = [h for h in self._handles if not h.done]
            if not active:
                return
            await asyncio.gather(*(h.wait() for h in active))

    @property
    def draining(self) -> bool:
        """True once :meth:`drain_gracefully` has begun."""
        return self._draining

    async def drain_gracefully(self, checkpoint: bool = False) -> None:
        """Stop admitting, then settle every accepted session (graceful stop).

        The teardown contract :meth:`shutdown` does not offer: nothing
        accepted is dropped. New submissions (and submitters waiting in
        backpressure, whose sessions were never accepted) are refused with
        :class:`~repro.errors.ServerDrainingError`; everything already in
        the admission queue or in flight is settled. With
        ``checkpoint=False`` sessions run to completion; with
        ``checkpoint=True`` in-flight sessions are paused at their next
        batch boundary and queued ones are paused unstarted, leaving every
        one of them checkpointable (the migration path of a fleet
        teardown). Pending fused detector work is flushed so no session
        stays blocked inside the batcher. Idempotent; returns when every
        accepted session is terminal.
        """
        loop = asyncio.get_running_loop()
        self._draining = True
        while self._space_waiters:
            waiter = self._space_waiters.popleft()
            if not waiter.done():
                waiter.set_exception(
                    ServerDrainingError(
                        "server began draining while this submission "
                        "waited for admission-queue room"
                    )
                )
        if checkpoint:
            for handle in list(self._running):
                handle.pause()
            # Queued sessions were accepted but never started: pause them
            # where they stand (a fresh session checkpoints fine) instead
            # of spending detector budget on work the caller is stopping.
            while self._waiting:
                _, _, handle = heapq.heappop(self._waiting)
                handle._finish("paused", loop)
        # Serve detection already pending so blocked sessions can reach
        # their next batch boundary (and see a pause request) promptly.
        self._batcher.flush()
        await self.drain()
        # Every session is terminal, so nothing new can be dispatched:
        # settle whatever the pipeline still holds and release the pool.
        await self.aclose()

    def evict_finished(self) -> int:
        """Forget terminal sessions; returns how many were evicted.

        The server keeps every submitted handle so :meth:`stats` can
        report full per-tenant history — on a long-lived server that
        retention grows without bound (each handle pins its whole
        session: environment, discriminator tracks, trace). Call this
        periodically once a batch of results has been consumed; evicted
        sessions simply stop contributing to future :meth:`stats`
        snapshots (the batcher's cumulative counters are unaffected).
        """
        before = len(self._handles)
        self._handles = [h for h in self._handles if not h.done]
        return before - len(self._handles)

    def evict(self, handle: SessionHandle) -> bool:
        """Forget one terminal session; ``False`` if it is still running.

        The targeted form of :meth:`evict_finished`, for callers holding
        other sessions whose stats history must survive — the fleet's
        checkpoint cycle evicts each superseded incarnation this way
        without touching its neighbours' paused sessions.
        """
        if not handle.done:
            return False
        try:
            self._handles.remove(handle)
        except ValueError:
            return False
        return True

    def stats(self) -> ServerStats:
        """Aggregate server/batcher/cache statistics (point in time)."""
        batcher = self._batcher.stats
        tenants: Dict[str, List[SessionHandle]] = {}
        for handle in self._handles:
            tenants.setdefault(handle.tenant, []).append(handle)
        per_tenant = {}
        for tenant, handles in tenants.items():
            per_tenant[tenant] = TenantStats(
                tenant=tenant,
                sessions=len(handles),
                finished=sum(h.state == "finished" for h in handles),
                samples=sum(h.num_samples for h in handles),
                results=sum(h.num_results for h in handles),
                detector_requests=sum(h.detector_requests for h in handles),
                detector_frames=sum(h.detector_frames for h in handles),
                cache_hits=batcher.tenant_cache_hits.get(tenant, 0),
                detect_wait=LatencyStats.of(
                    w for h in handles for w in h.detect_waits
                ),
                turnaround=LatencyStats.of(
                    h.ended_at - h.submitted_at
                    for h in handles
                    if h.ended_at is not None and h.submitted_at is not None
                ),
            )
        cache_info = None
        if self.engine is not None:
            cache_info = self.engine.cache_info()
        return ServerStats(
            submitted=len(self._handles),
            finished=sum(h.state == "finished" for h in self._handles),
            paused=sum(h.state == "paused" for h in self._handles),
            failed=sum(h.state == "failed" for h in self._handles),
            in_flight=len(self._running),
            queued=len(self._waiting),
            draining=self._draining,
            detector_calls=batcher.detector_calls + self._direct_detector_calls,
            detector_frames=batcher.frames + self._direct_detector_frames,
            batch_occupancy=batcher.mean_occupancy,
            fusion_ratio=batcher.fusion_ratio,
            batcher=batcher,
            per_tenant=per_tenant,
            detect_wait=LatencyStats.of(
                w for h in self._handles for w in h.detect_waits
            ),
            turnaround=LatencyStats.of(
                h.ended_at - h.submitted_at
                for h in self._handles
                if h.ended_at is not None and h.submitted_at is not None
            ),
            cache=cache_info,
            executor=self.executor.describe(),
        )

    # -- the event loop core -------------------------------------------------

    def _running_count(self) -> int:
        """How many sessions could still submit a detector request."""
        return len(self._running)

    def _pump(self, loop: asyncio.AbstractEventLoop) -> None:
        """Admit policy-preferred waiting sessions into free slots."""
        while self._waiting and len(self._running) < self.config.max_in_flight:
            _, _, handle = heapq.heappop(self._waiting)
            handle.state = "running"
            handle.started_at = loop.time()
            self._running.add(handle)
            self._tasks[handle] = loop.create_task(self._drive(handle))
        # Wake backpressured submitters for every unit of room now
        # available — queue slots freed by the admissions above *and*
        # in-flight slots freed by departures while the queue is empty
        # (with queue_capacity=0 the latter is the only signal, so waking
        # exclusively on queue pops would strand submitters forever). A
        # woken submitter re-checks its admission condition and re-waits
        # if a rival beat it to the room, so over-waking is safe.
        room = (self.config.queue_capacity - len(self._waiting)) + max(
            0, self.config.max_in_flight - len(self._running)
        )
        while room > 0 and self._space_waiters:
            waiter = self._space_waiters.popleft()
            if not waiter.done():
                waiter.set_result(None)
                room -= 1
        self._batcher.recheck()

    async def _drive(self, handle: SessionHandle) -> None:
        """Step one session to its terminal state (the serving inner loop).

        The same propose → detect → ingest → fulfil cycle as
        ``SearchRun.step``, with detection awaited through the
        cross-session batcher. Every iteration ends the step at a batch
        boundary, so pausing here always leaves the session
        checkpointable.
        """
        loop = asyncio.get_running_loop()
        session = handle.session
        run = session.search_run
        env = run.searcher.env
        detector = getattr(env, "detector", None)
        batching = self.config.batching and detector is not None
        terminal = "finished"
        try:
            while True:
                if handle._pause_requested or (
                    handle.pause_after is not None
                    and handle.steps >= handle.pause_after
                ):
                    terminal = "paused" if not run.finished else "finished"
                    break
                proposal = run.propose()
                if proposal is None:
                    break
                request = proposal.request
                if request is None:
                    # Environment without the request/fulfil split: observe
                    # inline. Concurrency still works; fusing does not.
                    observations = batched_observe(env, proposal.picks)
                else:
                    started = loop.time()
                    if batching:
                        detections = await self._batcher.detect(
                            detector, request, handle
                        )
                    else:
                        detections = env.detect_request(request)
                        self._direct_detector_calls += 1
                        self._direct_detector_frames += len(request)
                    handle.detect_waits.append(loop.time() - started)
                    handle.detector_requests += 1
                    handle.detector_frames += len(request)
                    observations = env.ingest_batch(request, detections)
                step = run.fulfil(proposal, observations)
                if handle.event_sink is not None:
                    handle.event_sink(handle, step)
                handle.steps += 1
                if self.on_step is not None:
                    self.on_step(handle)
                if run.finished:
                    break
                # Yield between steps so sibling sessions interleave even
                # when every detection is served from cache (no await).
                await asyncio.sleep(0)
        except asyncio.CancelledError:
            handle.error = QueryError("session cancelled by server shutdown")
            terminal = "failed"
        except Exception as exc:  # noqa: BLE001 - reported via the handle
            handle.error = exc
            terminal = "failed"
        finally:
            if terminal == "finished" and run.finished:
                # This loop steps the SearchRun directly, so the session's
                # completion hook (repository-index recording) would never
                # fire on the blocking path's behalf — notify it here.
                # Idempotent, and a raising hook is contained by the
                # session, so serving semantics are unchanged.
                notify = getattr(session, "notify_complete", None)
                if notify is not None:
                    notify()
            self._running.discard(handle)
            self._tasks.pop(handle, None)
            handle._finish(terminal, loop)
            # A departing session changes the quiescence count and frees
            # an in-flight slot: admit the next session and re-check the
            # batcher so waiting peers are not stranded.
            self._pump(loop)

    async def shutdown(self) -> None:
        """Cancel running sessions and fail queued ones (best effort)."""
        # Serve whatever detection work is already pending so sessions
        # blocked in the batcher are cancelled at an awaited point with
        # their futures resolved, not abandoned mid-request.
        self._batcher.flush()
        for task in list(self._tasks.values()):
            task.cancel()
        loop = asyncio.get_running_loop()
        while self._waiting:
            _, _, handle = heapq.heappop(self._waiting)
            handle.error = QueryError("server shut down before admission")
            handle._finish("failed", loop)
        while self._space_waiters:
            waiter = self._space_waiters.popleft()
            if not waiter.done():
                waiter.set_exception(
                    ServerOverloadedError("server shut down")
                )
        await asyncio.gather(*self._tasks.values(), return_exceptions=True)
        # Cancelled sessions have abandoned their detect futures; any
        # batch still executing off-loop resolves into cancelled futures
        # (results discarded, exceptions retrieved) before the pool goes.
        await self.aclose()

    async def aclose(self) -> None:
        """Settle off-loop detector work and release an owned executor.

        Called by :meth:`drain_gracefully`, :meth:`shutdown` and the
        :func:`serve_sessions` wrapper; idempotent, and safe to call on a
        server that never dispatched anything. Executors passed into
        :class:`ServerConfig` as instances are settled but *not* closed —
        their owner decides when the pool dies.
        """
        await self._batcher.settle()
        if self._owns_executor:
            await self.executor.aclose()


def serve_sessions(
    sessions,
    engine=None,
    config: Optional[ServerConfig] = None,
) -> list:
    """Blocking convenience: serve pre-built sessions, return outcomes.

    Runs a fresh event loop with one :class:`QueryServer`, submits the
    sessions in order, drains, and returns their outcomes in submission
    order. This is the single stepping loop behind
    ``QueryEngine.run_many``.

    Works from anywhere blocking code runs: called inside an already
    running event loop (a Jupyter cell, a coroutine of an async app) it
    hosts its private loop on a worker thread instead — same sessions,
    same outcomes, the caller blocks either way. Async applications that
    want actual concurrency with their own loop should use
    ``engine.serve()`` directly.
    """
    sessions = list(sessions)

    async def _go():
        server = QueryServer(engine, config)
        try:
            handles = [await server.submit(session=s) for s in sessions]
            return [await h.result() for h in handles]
        finally:
            await server.aclose()

    try:
        asyncio.get_running_loop()
    except RuntimeError:
        return asyncio.run(_go())
    # Already inside a loop: asyncio.run would throw, and the historical
    # run_many was plain synchronous code that worked here. A dedicated
    # thread keeps that contract; the caller blocks on join, so the
    # engine is still touched by one thread at a time.
    import threading

    results: list = []
    errors: list = []

    def _runner() -> None:
        try:
            results.append(asyncio.run(_go()))
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            errors.append(exc)

    thread = threading.Thread(target=_runner, name="repro-serve", daemon=True)
    thread.start()
    thread.join()
    if errors:
        raise errors[0]
    return results[0]
