"""Async multi-tenant serving: one detector, many concurrent searches.

The event-loop front end over the library's resumable search steppers:
:class:`QueryServer` runs many :class:`~repro.query.session.QuerySession`
s concurrently, :class:`DetectorBatcher` coalesces their pending frame
requests into fused detector batches (the cross-session batching the
ROADMAP's async-serving item calls for), and scheduling policies order
admission and batch assembly. Entry points: ``engine.serve()`` for async
code, ``engine.run_many`` for the blocking wrapper, ``repro serve`` for
workload replay from the command line.
"""

from repro.serving.batcher import BatcherStats, DetectorBatcher
from repro.serving.policies import (
    SCHEDULING_POLICIES,
    SchedulingPolicy,
    make_scheduling_policy,
    register_policy,
)
from repro.serving.server import (
    LatencyStats,
    QueryServer,
    ServerConfig,
    ServerStats,
    SessionHandle,
    TenantStats,
    serve_sessions,
)
from repro.serving.workload import (
    WorkloadItem,
    load_workload,
    replay,
    save_workload,
)

__all__ = [
    "BatcherStats",
    "DetectorBatcher",
    "LatencyStats",
    "QueryServer",
    "SCHEDULING_POLICIES",
    "SchedulingPolicy",
    "ServerConfig",
    "ServerStats",
    "SessionHandle",
    "TenantStats",
    "WorkloadItem",
    "load_workload",
    "make_scheduling_policy",
    "register_policy",
    "replay",
    "save_workload",
    "serve_sessions",
]
