"""Async multi-tenant serving: one detector, many concurrent searches.

The event-loop front end over the library's resumable search steppers:
:class:`QueryServer` runs many :class:`~repro.query.session.QuerySession`
s concurrently, :class:`DetectorBatcher` coalesces their pending frame
requests into fused detector batches (the cross-session batching the
ROADMAP's async-serving item calls for), detector executors run the
fused calls off-loop (thread/process pools with double-buffered
pipelining, see :mod:`repro.serving.executors`), and scheduling policies
order admission and batch assembly. Entry points: ``engine.serve()`` for
async code, ``engine.run_many`` for the blocking wrapper, ``repro
serve`` for workload replay from the command line.
"""

from repro.serving.batcher import BatcherStats, DetectorBatcher
from repro.serving.executors import (
    DETECTOR_EXECUTORS,
    DetectorExecutor,
    InlineDetectorExecutor,
    ProcessDetectorExecutor,
    ThreadDetectorExecutor,
    make_executor,
    register_executor,
)
from repro.serving.faults import (
    FaultPlan,
    FaultSpec,
    load_faults,
)
from repro.serving.fleet import (
    FleetConfig,
    FleetHandle,
    FleetRouter,
    FleetStats,
    replay_fleet,
    run_fleet,
)
from repro.serving.net import (
    FleetClient,
    NetServer,
    RemoteSession,
    RetryPolicy,
    serve_forever,
)
from repro.serving.placement import (
    PLACEMENT_POLICIES,
    PlacementPolicy,
    make_placement_policy,
    register_placement,
)
from repro.serving.policies import (
    SCHEDULING_POLICIES,
    SchedulingPolicy,
    make_scheduling_policy,
    register_policy,
)
from repro.serving.server import (
    LatencyStats,
    QueryServer,
    ServerConfig,
    ServerStats,
    SessionHandle,
    TenantStats,
    serve_sessions,
)
from repro.serving.workload import (
    WorkloadItem,
    item_from_json,
    load_executor,
    load_workload,
    replay,
    save_workload,
)

__all__ = [
    "BatcherStats",
    "DETECTOR_EXECUTORS",
    "DetectorBatcher",
    "DetectorExecutor",
    "FaultPlan",
    "FaultSpec",
    "FleetClient",
    "FleetConfig",
    "FleetHandle",
    "FleetRouter",
    "FleetStats",
    "InlineDetectorExecutor",
    "LatencyStats",
    "NetServer",
    "PLACEMENT_POLICIES",
    "PlacementPolicy",
    "ProcessDetectorExecutor",
    "QueryServer",
    "RemoteSession",
    "RetryPolicy",
    "SCHEDULING_POLICIES",
    "SchedulingPolicy",
    "ServerConfig",
    "ServerStats",
    "SessionHandle",
    "TenantStats",
    "ThreadDetectorExecutor",
    "WorkloadItem",
    "item_from_json",
    "load_executor",
    "load_faults",
    "load_workload",
    "make_executor",
    "make_placement_policy",
    "make_scheduling_policy",
    "register_executor",
    "register_placement",
    "register_policy",
    "replay",
    "replay_fleet",
    "run_fleet",
    "save_workload",
    "serve_forever",
    "serve_sessions",
]
