"""The sharded serving fleet: shard processes, a router, live migration.

One :class:`~repro.serving.server.QueryServer` scales until one CPU is
saturated stepping sessions and running the (simulated) detector. The
fleet layer scales past that point with processes, reusing the existing
building blocks end to end:

* each **shard** is a child process running a full
  :class:`~repro.serving.net.NetServer` over its own
  :class:`~repro.query.engine.QueryEngine`, built against the *same*
  dataset and engine seed as the parent's — the dataset's world is
  published once into shared memory (:func:`repro.parallel.shm
  .publish_worlds`), so spawning a shard ships a ~100-byte handle, not
  megabytes of world;
* all shards adopt one :class:`~repro.parallel.shm
  .SharedDetectionCache`, so a frame any shard detected is a hit for
  every shard after it and :meth:`FleetRouter.stats` can aggregate
  per-scope hit/miss counters fleet-wide;
* the :class:`FleetRouter` fans submissions out over the shards through
  a pluggable placement policy (:mod:`repro.serving.placement`), with
  fleet-level admission control mirroring the single server's: at most
  ``max_in_flight`` router-tracked sessions per shard, a bounded
  router-side queue in front, and backpressure (or typed
  :class:`~repro.errors.ServerOverloadedError`) beyond that.

Correctness is placement-independent for the same reason serving is
scheduling-independent: every shard serves the same repository with the
same engine seed, sessions are isolated, and detection is pure — so a
session's trace is byte-identical whichever shard runs it, and
:func:`replay_fleet` of a workload is element-wise identical to solo
``engine.run`` calls. That also makes **live migration** safe:
:meth:`FleetRouter.migrate` pauses a session on its shard, ships the
digest-verified checkpoint over the wire, and restores it on another
shard; the merged trace is byte-identical to an unmigrated run.

Typical use::

    async def main():
        router = await FleetRouter.launch(dataset, n_shards=2,
                                          placement="hash_tenant")
        try:
            handles = await replay_fleet(router, load_workload(path),
                                         time_scale=0.0)
            outcomes = [await h.result() for h in handles]
            print((await router.stats()).describe())
        finally:
            await router.shutdown()

CLI: ``repro fleet --dataset ... --workload ... --shards 2``.
"""

from __future__ import annotations

import asyncio
import base64
import pickle
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

from repro.detection.cache import CacheInfo, ScopeCacheInfo
from repro.errors import (
    ConfigError,
    QueryError,
    ReproError,
    ServerOverloadedError,
)
from repro.experiments.parallel import resolve_context
from repro.parallel.shm import SharedDetectionCache, publish_worlds
from repro.serving.net import FleetClient, _raise_typed, serve_forever
from repro.serving.placement import PlacementPolicy, make_placement_policy
from repro.serving.server import ServerConfig
from repro.serving.workload import WorkloadItem

__all__ = [
    "FleetConfig",
    "FleetHandle",
    "FleetRouter",
    "FleetStats",
    "outcome_of",
    "replay_fleet",
    "run_fleet",
]


@dataclass(frozen=True)
class FleetConfig:
    """Knobs of a :class:`FleetRouter`.

    ``server`` configures every shard's :class:`~repro.serving.server
    .QueryServer`; its ``max_in_flight`` is also the router's per-shard
    admission limit, so shards never queue internally — the fleet's one
    waiting line is the router's, bounded at ``queue_capacity`` waiting
    submissions per shard. ``placement`` names a policy from
    :mod:`repro.serving.placement` (or is an instance). ``context``
    picks the multiprocessing start method (None honours
    ``REPRO_MP_CONTEXT`` / the platform default). ``shared_cache``
    wires every shard into one cross-process detection memo.
    """

    n_shards: int = 2
    placement: Union[str, PlacementPolicy, None] = None
    server: ServerConfig = field(default_factory=ServerConfig)
    queue_capacity: int = 64
    context: Optional[str] = None
    shared_cache: bool = True
    host: str = "127.0.0.1"
    launch_timeout: float = 60.0
    #: Directory of a :class:`~repro.index.RepositoryIndex` shared by
    #: every shard engine. Shards record completed sessions as their own
    #: append-only segments (the format is concurrent-writer safe), so
    #: knowledge earned on any shard warm-starts and replays on all of
    #: them. None disables cross-query reuse.
    index: Optional[str] = None

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ConfigError("n_shards must be >= 1")
        if self.queue_capacity < 0:
            raise ConfigError("queue_capacity must be >= 0")


@dataclass(frozen=True)
class _ShardSpec:
    """Everything a shard child process needs to come up (must pickle)."""

    index: int
    dataset: object
    engine_seed: int
    cache: Optional[SharedDetectionCache]
    server: ServerConfig
    host: str
    #: Repository-index directory shared fleet-wide (``index`` already
    #: names the shard number here, hence the distinct field name).
    repo_index: Optional[str] = None


def _shard_main(spec: _ShardSpec, conn) -> None:
    """Child-process entry point: serve one shard until shutdown.

    Module-level so spawn contexts can import it. Reports the bound
    ephemeral port (or a startup error) through ``conn``, then serves
    until a client sends the ``shutdown`` op.
    """
    import os

    os.environ["REPRO_IN_WORKER"] = "1"
    try:
        if spec.cache is not None:
            from repro.parallel.shm import adopt_shared_cache

            adopt_shared_cache(spec.cache)
        from repro.query.engine import QueryEngine

        engine = QueryEngine(
            spec.dataset,
            seed=spec.engine_seed,
            detection_cache=spec.cache if spec.cache is not None else "unbounded",
            index=spec.repo_index,
        )
    except BaseException as exc:  # noqa: BLE001 - reported to the parent
        conn.send(("error", f"{type(exc).__name__}: {exc}"))
        return
    asyncio.run(
        serve_forever(
            engine,
            host=spec.host,
            port=0,
            config=spec.server,
            ready=lambda port: conn.send(("ok", port)),
        )
    )


class _Shard:
    """Router-side record of one shard process."""

    def __init__(self, index: int, process, conn):
        self.index = index
        self.process = process
        self.conn = conn
        self.port: Optional[int] = None
        self.client: Optional[FleetClient] = None
        #: Router-tracked sessions admitted to this shard and not yet
        #: terminal — what placement policies see as load.
        self.active = 0
        #: Submissions waiting in this shard's router-side queue.
        self.queued = 0
        self.queue: "asyncio.Queue[FleetHandle]" = asyncio.Queue()


class FleetHandle:
    """The router-side face of one submitted (possibly migrating) session.

    The fleet analogue of :class:`~repro.serving.server.SessionHandle`:
    :meth:`wait` / :meth:`result` survive a live migration transparently
    — they settle when the session reaches a terminal state that is not
    a migration staging pause, on whichever shard it ends up.
    """

    def __init__(self, item: WorkloadItem, seq: int):
        self.item = item
        self.seq = seq
        self.shard: Optional[int] = None
        self.remote = None  # RemoteSession once admitted
        self.migrations = 0
        self._migrating = False
        self._admitted: "asyncio.Future" = (
            asyncio.get_running_loop().create_future()
        )
        self._settled: "asyncio.Future[dict]" = (
            asyncio.get_running_loop().create_future()
        )

    @property
    def tenant(self) -> str:
        return self.item.tenant

    @property
    def done(self) -> bool:
        return self._settled.done()

    async def admitted(self) -> None:
        """Wait until the session is accepted by a shard server."""
        await asyncio.shield(self._admitted)

    async def wait(self) -> str:
        """Await the terminal state: 'finished', 'paused' or 'failed'."""
        frame = await asyncio.shield(self._settled)
        return frame["state"]

    async def terminal(self) -> dict:
        return await asyncio.shield(self._settled)

    async def result(self):
        """Await completion and return the session's QueryOutcome."""
        frame = await self.terminal()
        if frame["state"] == "failed":
            _raise_typed(frame)
        if frame["state"] == "paused":
            raise QueryError(
                "session was paused before finishing; migrate or restore "
                "it to resume"
            )
        return pickle.loads(base64.b64decode(frame["outcome"]))

    def _settle(self, frame: dict) -> None:
        if not self._settled.done():
            self._settled.set_result(frame)

    def _fail(self, exc: BaseException) -> None:
        if not self._admitted.done():
            self._admitted.set_exception(exc)
        if not self._settled.done():
            self._settled.set_exception(exc)


def _cache_info_from_json(raw: Optional[dict]) -> Optional[CacheInfo]:
    """Rebuild a :class:`CacheInfo` from its wire (asdict) form."""
    if raw is None:
        return None
    return CacheInfo(
        policy=raw["policy"],
        hits=raw["hits"],
        misses=raw["misses"],
        size=raw["size"],
        capacity=raw["capacity"],
        per_scope={
            scope: ScopeCacheInfo(**counts)
            for scope, counts in raw.get("per_scope", {}).items()
        },
    )


@dataclass(frozen=True)
class FleetStats:
    """Point-in-time aggregate of every shard's :class:`ServerStats`.

    ``per_shard`` keeps each shard's full stats snapshot (as the JSON
    primitives the wire carries); the scalar fields are their sums.
    ``cache`` is the fleet-wide detection-cache view — with the shared
    cache, per-scope hit/miss counters aggregated across shard processes
    (:meth:`~repro.parallel.shm.SharedDetectionCache.aggregate_info`);
    otherwise the per-shard snapshots merged.
    """

    shards: int
    submitted: int
    finished: int
    paused: int
    failed: int
    in_flight: int
    queued: int
    detector_calls: int
    detector_frames: int
    migrations: int
    per_shard: List[dict]
    cache: Optional[CacheInfo] = None

    def describe(self) -> str:
        """A compact human-readable multi-line summary."""
        lines = [
            (
                f"fleet: {self.shards} shards, "
                f"{self.finished}/{self.submitted} sessions finished "
                f"({self.paused} paused, {self.failed} failed, "
                f"{self.in_flight} in flight, {self.queued} queued, "
                f"{self.migrations} migrated)"
            ),
            (
                f"detector: {self.detector_calls} calls, "
                f"{self.detector_frames} frames across shards"
            ),
        ]
        for index, stats in enumerate(self.per_shard):
            lines.append(
                f"shard {index}: {stats['finished']}/{stats['submitted']} "
                f"finished, {stats['detector_calls']} detector calls, "
                f"{stats['detector_frames']} frames"
                + (" [draining]" if stats.get("draining") else "")
            )
        if self.cache is not None:
            lines.append(f"cache: {self.cache}")
            for scope in sorted(self.cache.per_scope):
                counts = self.cache.per_scope[scope]
                lines.append(
                    f"  scope {scope[:12]}…: {counts.hits} hits / "
                    f"{counts.misses} misses ({counts.hit_rate:.1%})"
                )
        return "\n".join(lines)


class FleetRouter:
    """Routes sessions across shard server processes.

    Build with :meth:`launch` (async classmethod) and tear down with
    :meth:`shutdown` — or use as an async context manager. Submission
    follows the placement policy unless the item pins a ``shard``;
    :meth:`migrate` moves a running session between shards with its
    trace intact.
    """

    def __init__(self, config: FleetConfig):
        self.config = config
        self.placement = make_placement_policy(config.placement)
        self.shards: List[_Shard] = []
        self._stores = []  # SharedWorldStores owned by this fleet
        self._cache: Optional[SharedDetectionCache] = None
        self._capacity = asyncio.Condition()
        self._handles: List[FleetHandle] = []
        self._dispatchers: List[asyncio.Task] = []
        self._watchers: "set[asyncio.Task]" = set()
        self._migrations = 0
        self._seq = 0
        self._closed = False

    # -- lifecycle -----------------------------------------------------------

    @classmethod
    async def launch(
        cls,
        dataset,
        n_shards: Optional[int] = None,
        *,
        config: Optional[FleetConfig] = None,
        engine_seed: int = 0,
        **overrides,
    ) -> "FleetRouter":
        """Spawn the shard processes and connect to them.

        ``config`` or keyword overrides build a :class:`FleetConfig`
        (``n_shards`` is accepted positionally for convenience). The
        dataset's world is published to shared memory for the duration
        of the fleet, so every start method ships it as a handle.
        """
        if config is not None and (overrides or n_shards is not None):
            raise ConfigError("pass config= or keyword overrides, not both")
        if config is None:
            if n_shards is not None:
                overrides["n_shards"] = n_shards
            config = FleetConfig(**overrides)
        router = cls(config)
        try:
            await router._start(dataset, engine_seed)
        except BaseException:
            await router.shutdown()
            raise
        return router

    async def _start(self, dataset, engine_seed: int) -> None:
        ctx = resolve_context(self.config.context)
        if ctx is None:
            import multiprocessing

            ctx = multiprocessing.get_context()
        self._stores = publish_worlds([dataset.world])
        if self.config.shared_cache:
            # A private store per fleet: counters and entries belong to
            # this fleet's lifetime, not the process-global singleton.
            self._cache = SharedDetectionCache()
        for index in range(self.config.n_shards):
            parent_conn, child_conn = ctx.Pipe()
            spec = _ShardSpec(
                index=index,
                dataset=dataset,
                engine_seed=engine_seed,
                cache=self._cache,
                server=self.config.server,
                host=self.config.host,
                repo_index=self.config.index,
            )
            process = ctx.Process(
                target=_shard_main,
                args=(spec, child_conn),
                name=f"repro-shard-{index}",
                daemon=True,
            )
            process.start()
            child_conn.close()
            self.shards.append(_Shard(index, process, parent_conn))
        for shard in self.shards:
            status, payload = await self._await_startup(shard)
            if status != "ok":
                raise QueryError(
                    f"shard {shard.index} failed to start: {payload}"
                )
            shard.port = payload
            shard.client = await FleetClient.connect(self.config.host, payload)
            self._dispatchers.append(
                asyncio.create_task(self._dispatch(shard))
            )

    async def _await_startup(self, shard: _Shard):
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.config.launch_timeout
        while True:
            if shard.conn.poll(0):
                try:
                    return shard.conn.recv()
                except EOFError:
                    return (
                        "error",
                        "pipe closed before the shard reported a port "
                        f"(exit code {shard.process.exitcode})",
                    )
            if not shard.process.is_alive():
                return (
                    "error",
                    f"process exited with code {shard.process.exitcode} "
                    "before reporting a port",
                )
            if loop.time() > deadline:
                return ("error", "timed out waiting for the shard port")
            await asyncio.sleep(0.01)

    async def __aenter__(self) -> "FleetRouter":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.shutdown()

    async def shutdown(self) -> None:
        """Drain and stop every shard, reap the processes, free memory.

        Graceful by construction: each shard server drains (finishing
        accepted sessions) before its socket closes; processes that
        still do not exit are terminated. Idempotent.
        """
        if self._closed:
            return
        self._closed = True
        for task in self._dispatchers:
            task.cancel()
        await asyncio.gather(*self._dispatchers, return_exceptions=True)
        for shard in self.shards:
            if shard.client is None:
                continue
            try:
                await shard.client.shutdown_server(drain=True)
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass
            await shard.client.close()
        for task in list(self._watchers):
            task.cancel()
        await asyncio.gather(*self._watchers, return_exceptions=True)
        loop = asyncio.get_running_loop()
        deadline = loop.time() + 10.0
        for shard in self.shards:
            while shard.process.is_alive() and loop.time() < deadline:
                await asyncio.sleep(0.02)
            if shard.process.is_alive():  # pragma: no cover - stuck child
                shard.process.terminate()
                shard.process.join(timeout=5)
            shard.conn.close()
        for handle in self._handles:
            if not handle.done:
                handle._fail(QueryError("fleet shut down"))
        for store in self._stores:
            store.close()
        self._stores = []

    # -- submission ----------------------------------------------------------

    def _pick_shard(self, item: WorkloadItem) -> _Shard:
        if item.shard is not None:
            if item.shard >= len(self.shards):
                raise ConfigError(
                    f"item pins shard {item.shard} but the fleet has "
                    f"{len(self.shards)} shards"
                )
            return self.shards[item.shard]
        index = self.placement.choose(item, self.shards)
        if not 0 <= index < len(self.shards):
            raise ConfigError(
                f"placement policy {self.placement.name!r} chose shard "
                f"{index} of {len(self.shards)}"
            )
        return self.shards[index]

    async def submit(
        self, item: WorkloadItem, *, wait: bool = True
    ) -> FleetHandle:
        """Route one workload item to a shard; returns its handle.

        Admission mirrors the single server's: if the chosen shard has a
        free in-flight slot the submission dispatches immediately; else
        it waits in that shard's bounded router-side queue. With the
        queue full, ``wait=True`` backpressures (the coroutine waits for
        queue room) and ``wait=False`` raises
        :class:`~repro.errors.ServerOverloadedError`.
        """
        if self._closed:
            raise QueryError("fleet router is shut down")
        shard = self._pick_shard(item)
        async with self._capacity:
            while (
                shard.queued >= self.config.queue_capacity
                and shard.active >= self.config.server.max_in_flight
            ):
                if not wait:
                    raise ServerOverloadedError(
                        f"shard {shard.index} admission queue full "
                        f"({shard.queued} waiting, {shard.active} in flight)"
                    )
                await self._capacity.wait()
            handle = FleetHandle(item, self._seq)
            self._seq += 1
            handle.shard = shard.index
            shard.queued += 1
        self._handles.append(handle)
        shard.queue.put_nowait(handle)
        return handle

    async def _dispatch(self, shard: _Shard) -> None:
        """Per-shard dispatcher: admit queued handles in arrival order."""
        while True:
            handle = await shard.queue.get()
            async with self._capacity:
                while shard.active >= self.config.server.max_in_flight:
                    await self._capacity.wait()
                shard.active += 1
                shard.queued -= 1
                self._capacity.notify_all()
            try:
                remote = await shard.client.submit(
                    handle.item,
                    wait=True,
                    pause_after=handle.item.pause_after,
                )
            except BaseException as exc:  # noqa: BLE001 - settles the handle
                async with self._capacity:
                    shard.active -= 1
                    self._capacity.notify_all()
                handle._fail(exc)
                if isinstance(exc, asyncio.CancelledError):
                    raise
                continue
            handle.remote = remote
            if not handle._admitted.done():
                handle._admitted.set_result(None)
            self._watch(handle, remote, shard)

    def _watch(self, handle: FleetHandle, remote, shard: _Shard) -> None:
        task = asyncio.create_task(self._watch_remote(handle, remote, shard))
        self._watchers.add(task)
        task.add_done_callback(self._watchers.discard)

    async def _watch_remote(
        self, handle: FleetHandle, remote, shard: _Shard
    ) -> None:
        try:
            frame = await remote.terminal()
        except BaseException as exc:  # noqa: BLE001 - must settle the handle
            async with self._capacity:
                shard.active -= 1
                self._capacity.notify_all()
            if not handle._migrating:
                handle._fail(
                    QueryError("fleet shut down")
                    if isinstance(exc, asyncio.CancelledError)
                    else exc
                )
            if isinstance(exc, asyncio.CancelledError):
                raise
            return
        async with self._capacity:
            shard.active -= 1
            self._capacity.notify_all()
        if handle._migrating and frame["state"] == "paused":
            # A migration staging pause, not a terminal outcome: the
            # migrate() coroutine is mid-move and will re-watch the
            # session on its destination shard.
            return
        handle._migrating = False
        handle._settle(frame)

    # -- live migration ------------------------------------------------------

    async def migrate(self, handle: FleetHandle, to_shard: int) -> FleetHandle:
        """Move a running session to another shard, trace intact.

        Pause on the source shard, ship the checkpoint over the wire,
        restore on the destination (waiting for one of its in-flight
        slots — migrations bypass the router queue). The session's
        :meth:`FleetHandle.wait` / :meth:`~FleetHandle.result` callers
        never notice: the handle settles with the outcome from the
        destination shard, and determinism makes the merged trace
        byte-identical to a solo run. Returns the same handle.
        """
        if not 0 <= to_shard < len(self.shards):
            raise ConfigError(
                f"cannot migrate to shard {to_shard} of {len(self.shards)}"
            )
        if handle.remote is None:
            await handle.admitted()
        target = self.shards[to_shard]
        if handle.done:
            # Already terminal. A paused session (e.g. staged with
            # pause_after) is exactly what migration moves: re-open the
            # handle so wait()/result() callers see the continuation.
            if handle._settled.exception() is not None:
                raise QueryError("cannot migrate a failed session")
            frame = handle._settled.result()
            if frame["state"] != "paused":
                raise QueryError("session already reached a terminal state")
            handle._settled = asyncio.get_running_loop().create_future()
        else:
            handle._migrating = True
        try:
            if handle._migrating:
                await handle.remote.pause()
                frame = await handle.remote.terminal()
                if frame["state"] != "paused":
                    # Finished (or failed) before the pause landed —
                    # nothing left to move; settle with the genuine
                    # outcome.
                    handle._migrating = False
                    handle._settle(frame)
                    return handle
            blob = await handle.remote.checkpoint()
            async with self._capacity:
                while target.active >= self.config.server.max_in_flight:
                    await self._capacity.wait()
                target.active += 1
            try:
                remote = await target.client.restore(
                    blob,
                    tenant=handle.item.tenant,
                    deadline=handle.item.deadline,
                    wait=True,
                )
            except BaseException:
                async with self._capacity:
                    target.active -= 1
                    self._capacity.notify_all()
                raise
        except BaseException as exc:  # noqa: BLE001 - settles the handle
            handle._migrating = False
            if not handle.done:
                handle._fail(exc)
            raise
        handle.remote = remote
        handle.shard = to_shard
        handle.migrations += 1
        handle._migrating = False
        self._migrations += 1
        self._watch(handle, remote, target)
        return handle

    # -- introspection / draining --------------------------------------------

    async def drain(self) -> None:
        """Wait until every submitted session reached a terminal state."""
        while True:
            active = [h for h in self._handles if not h.done]
            if not active:
                return
            await asyncio.gather(
                *(h.terminal() for h in active), return_exceptions=True
            )

    async def stats(self) -> FleetStats:
        """Aggregate fleet statistics (one ``stats`` round-trip per shard).

        Each shard publishes its shared-cache counters while answering,
        so the fleet-wide per-scope cache breakdown is current as of
        this call.
        """
        per_shard = []
        for shard in self.shards:
            per_shard.append(await shard.client.stats())
        if self._cache is not None:
            cache = self._cache.aggregate_info()
        else:
            from repro.detection.cache import merge_cache_infos

            infos = [
                _cache_info_from_json(stats.get("cache"))
                for stats in per_shard
            ]
            cache = (
                merge_cache_infos(infos)
                if any(info is not None for info in infos)
                else None
            )
        return FleetStats(
            shards=len(self.shards),
            submitted=sum(s["submitted"] for s in per_shard),
            finished=sum(s["finished"] for s in per_shard),
            paused=sum(s["paused"] for s in per_shard),
            failed=sum(s["failed"] for s in per_shard),
            in_flight=sum(s["in_flight"] for s in per_shard),
            queued=sum(s["queued"] for s in per_shard)
            + sum(s.queued for s in self.shards),
            detector_calls=sum(s["detector_calls"] for s in per_shard),
            detector_frames=sum(s["detector_frames"] for s in per_shard),
            migrations=self._migrations,
            per_shard=per_shard,
            cache=cache,
        )


async def replay_fleet(
    router: FleetRouter,
    items: Sequence[WorkloadItem],
    time_scale: float = 1.0,
) -> List[FleetHandle]:
    """Submit a workload to the fleet honouring arrival times.

    The fleet analogue of :func:`repro.serving.workload.replay`: items
    are submitted in arrival order (``time_scale=0`` as fast as
    admission allows), routed by the router's placement policy unless an
    item pins a ``shard``; items with ``pause_after`` pause there and
    stay checkpointable. The returned handles align with ``items``.
    """
    items = list(items)
    loop = asyncio.get_running_loop()
    start = loop.time()
    handles: "List[Optional[FleetHandle]]" = [None] * len(items)
    order = sorted(range(len(items)), key=lambda i: items[i].arrival)
    for index in order:
        item = items[index]
        if time_scale > 0:
            delay = item.arrival * time_scale - (loop.time() - start)
            if delay > 0:
                await asyncio.sleep(delay)
        handles[index] = await router.submit(item)
    return handles


def run_fleet(
    dataset,
    items: Sequence[WorkloadItem],
    *,
    config: Optional[FleetConfig] = None,
    engine_seed: int = 0,
    time_scale: float = 0.0,
    **overrides,
):
    """Blocking convenience: launch a fleet, replay a workload, tear down.

    Returns ``(summaries, fleet_stats)``: one summary dict per item
    (aligned with ``items``) carrying its routing and terminal facts —
    ``tenant``, ``object``, ``method``, ``shard``, ``migrations``,
    ``state``, ``num_samples``, ``num_results``, and for finished
    sessions the base64-pickled outcome (unpickle with
    :func:`outcome_of`). This is the loop behind ``repro fleet``.
    """

    async def _go():
        router = await FleetRouter.launch(
            dataset, config=config, engine_seed=engine_seed, **overrides
        )
        try:
            handles = await replay_fleet(router, items, time_scale=time_scale)
            summaries = []
            for handle in handles:
                try:
                    frame = await handle.terminal()
                except ReproError as exc:
                    frame = {
                        "state": "failed",
                        "error": type(exc).__name__,
                        "message": str(exc),
                        "num_samples": 0,
                        "num_results": 0,
                    }
                summaries.append(
                    {
                        "tenant": handle.item.tenant,
                        "object": handle.item.object,
                        "method": handle.item.method,
                        "shard": handle.shard,
                        "migrations": handle.migrations,
                        "state": frame["state"],
                        "num_samples": frame.get("num_samples", 0),
                        "num_results": frame.get("num_results", 0),
                        "error": frame.get("error"),
                        "message": frame.get("message"),
                        "outcome": frame.get("outcome"),
                    }
                )
            stats = await router.stats()
            return summaries, stats
        finally:
            await router.shutdown()

    return asyncio.run(_go())


def outcome_of(summary: dict):
    """The :class:`~repro.query.engine.QueryOutcome` inside a finished
    :func:`run_fleet` summary (None for paused/failed sessions)."""
    if summary.get("state") != "finished" or summary.get("outcome") is None:
        return None
    return pickle.loads(base64.b64decode(summary["outcome"]))
