"""The sharded serving fleet: shard processes, a router, live migration.

One :class:`~repro.serving.server.QueryServer` scales until one CPU is
saturated stepping sessions and running the (simulated) detector. The
fleet layer scales past that point with processes, reusing the existing
building blocks end to end:

* each **shard** is a child process running a full
  :class:`~repro.serving.net.NetServer` over its own
  :class:`~repro.query.engine.QueryEngine`, built against the *same*
  dataset and engine seed as the parent's — the dataset's world is
  published once into shared memory (:func:`repro.parallel.shm
  .publish_worlds`), so spawning a shard ships a ~100-byte handle, not
  megabytes of world;
* all shards adopt one :class:`~repro.parallel.shm
  .SharedDetectionCache`, so a frame any shard detected is a hit for
  every shard after it and :meth:`FleetRouter.stats` can aggregate
  per-scope hit/miss counters fleet-wide;
* the :class:`FleetRouter` fans submissions out over the shards through
  a pluggable placement policy (:mod:`repro.serving.placement`), with
  fleet-level admission control mirroring the single server's: at most
  ``max_in_flight`` router-tracked sessions per shard, a bounded
  router-side queue in front, and backpressure (or typed
  :class:`~repro.errors.ServerOverloadedError`) beyond that.

Correctness is placement-independent for the same reason serving is
scheduling-independent: every shard serves the same repository with the
same engine seed, sessions are isolated, and detection is pure — so a
session's trace is byte-identical whichever shard runs it, and
:func:`replay_fleet` of a workload is element-wise identical to solo
``engine.run`` calls. That also makes **live migration** safe:
:meth:`FleetRouter.migrate` pauses a session on its shard, ships the
digest-verified checkpoint over the wire, and restores it on another
shard; the merged trace is byte-identical to an unmigrated run.

Typical use::

    async def main():
        router = await FleetRouter.launch(dataset, n_shards=2,
                                          placement="hash_tenant")
        try:
            handles = await replay_fleet(router, load_workload(path),
                                         time_scale=0.0)
            outcomes = [await h.result() for h in handles]
            print((await router.stats()).describe())
        finally:
            await router.shutdown()

CLI: ``repro fleet --dataset ... --workload ... --shards 2``.
"""

from __future__ import annotations

import asyncio
import base64
import pickle
from dataclasses import dataclass, field, replace as dataclass_replace
from typing import List, Optional, Sequence, Union

from repro.detection.cache import CacheInfo, ScopeCacheInfo
from repro.errors import (
    ConfigError,
    FleetDegradedError,
    QueryError,
    ReproError,
    ServerOverloadedError,
    ShardLostError,
    WireTimeoutError,
)
from repro.experiments.parallel import resolve_context
from repro.parallel.shm import SharedDetectionCache, publish_worlds
from repro.serving.faults import FaultPlan
from repro.serving.net import (
    FleetClient,
    RetryPolicy,
    _raise_typed,
    serve_forever,
)
from repro.serving.placement import PlacementPolicy, make_placement_policy
from repro.serving.server import ServerConfig
from repro.serving.workload import WorkloadItem

#: Exceptions that mean "the wire or the shard broke", as opposed to a
#: typed answer from a healthy server. These route into recovery.
_TRANSPORT_ERRORS = (ConnectionError, OSError, EOFError, WireTimeoutError)

__all__ = [
    "FleetConfig",
    "FleetHandle",
    "FleetRouter",
    "FleetStats",
    "outcome_of",
    "replay_fleet",
    "run_fleet",
]


@dataclass(frozen=True)
class FleetConfig:
    """Knobs of a :class:`FleetRouter`.

    ``server`` configures every shard's :class:`~repro.serving.server
    .QueryServer`; its ``max_in_flight`` is also the router's per-shard
    admission limit, so shards never queue internally — the fleet's one
    waiting line is the router's, bounded at ``queue_capacity`` waiting
    submissions per shard. ``placement`` names a policy from
    :mod:`repro.serving.placement` (or is an instance). ``context``
    picks the multiprocessing start method (None honours
    ``REPRO_MP_CONTEXT`` / the platform default). ``shared_cache``
    wires every shard into one cross-process detection memo.
    """

    n_shards: int = 2
    placement: Union[str, PlacementPolicy, None] = None
    server: ServerConfig = field(default_factory=ServerConfig)
    queue_capacity: int = 64
    context: Optional[str] = None
    shared_cache: bool = True
    host: str = "127.0.0.1"
    launch_timeout: float = 60.0
    #: Directory of a :class:`~repro.index.RepositoryIndex` shared by
    #: every shard engine. Shards record completed sessions as their own
    #: append-only segments (the format is concurrent-writer safe), so
    #: knowledge earned on any shard warm-starts and replays on all of
    #: them. None disables cross-query reuse.
    index: Optional[str] = None
    #: Supervise shards: monitor liveness + heartbeats, restart crashed
    #: or hung shards and recover their sessions. Off, failures surface
    #: as raw transport errors on the affected handles.
    supervise: bool = True
    #: Auto-checkpoint supervised sessions every N fulfilled steps (the
    #: router pauses at a batch boundary, pulls the v2 envelope over the
    #: wire, and resumes). A crash then costs at most N redone steps.
    #: None disables the cycle: sessions recover from scratch. Items
    #: with an explicit ``pause_after`` are exempt (a user staging pause
    #: must land, not be consumed by the checkpoint cycle).
    checkpoint_every: Optional[int] = None
    #: Seconds between per-shard heartbeat probes.
    heartbeat_interval: float = 0.5
    #: Per-ping reply deadline; a slower shard counts a missed beat.
    heartbeat_timeout: float = 1.0
    #: Consecutive missed beats that declare a live process hung (it is
    #: then killed and handled exactly like a crash).
    missed_heartbeats: int = 3
    #: Restarts allowed per shard before its circuit breaker trips and
    #: the shard is marked down for the rest of the fleet's life.
    max_restarts: int = 2
    #: Default per-request timeout on router->shard clients.
    op_timeout: float = 30.0
    #: Chaos testing: a :class:`~repro.serving.faults.FaultPlan` armed
    #: on the shard processes (see ``tests/test_fleet_faults.py``).
    faults: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ConfigError("n_shards must be >= 1")
        if self.queue_capacity < 0:
            raise ConfigError("queue_capacity must be >= 0")
        if self.checkpoint_every is not None and self.checkpoint_every < 1:
            raise ConfigError("checkpoint_every must be >= 1 (or None)")
        if self.heartbeat_interval <= 0 or self.heartbeat_timeout <= 0:
            raise ConfigError("heartbeat intervals must be > 0")
        if self.missed_heartbeats < 1:
            raise ConfigError("missed_heartbeats must be >= 1")
        if self.max_restarts < 0:
            raise ConfigError("max_restarts must be >= 0")
        if self.faults is not None and not isinstance(self.faults, FaultPlan):
            raise ConfigError("faults must be a FaultPlan (or None)")
        if not isinstance(self.server.executor, (str, type(None))):
            # _ShardSpec pickles the ServerConfig into each shard child;
            # an executor *instance* owns pools/threads that cannot (and
            # must not) cross a process boundary.
            raise ConfigError(
                "fleet server configs must name their detector executor "
                "by spec string (e.g. 'thread', 'process:spawn'); "
                "DetectorExecutor instances cannot be shipped to shard "
                "processes"
            )


@dataclass(frozen=True)
class _ShardSpec:
    """Everything a shard child process needs to come up (must pickle)."""

    index: int
    dataset: object
    engine_seed: int
    cache: Optional[SharedDetectionCache]
    server: ServerConfig
    host: str
    #: Repository-index directory shared fleet-wide (``index`` already
    #: names the shard number here, hence the distinct field name).
    repo_index: Optional[str] = None
    #: Fault specs armed on this shard (chaos testing). Relaunches after
    #: a crash carry only the ``repeat=True`` subset, so one scripted
    #: kill does not become a crash loop.
    faults: tuple = ()


def _shard_spawns_children(server: ServerConfig) -> bool:
    """Whether this server config makes a shard start its own processes."""
    spec = server.executor
    return isinstance(spec, str) and spec.partition(":")[0] == "process"


def _shard_main(spec: _ShardSpec, conn) -> None:
    """Child-process entry point: serve one shard until shutdown.

    Module-level so spawn contexts can import it. Reports the bound
    ephemeral port (or a startup error) through ``conn``, then serves
    until a client sends the ``shutdown`` op.
    """
    import os

    os.environ["REPRO_IN_WORKER"] = "1"
    try:
        if spec.cache is not None:
            from repro.parallel.shm import adopt_shared_cache

            adopt_shared_cache(spec.cache)
        from repro.query.engine import QueryEngine

        engine = QueryEngine(
            spec.dataset,
            seed=spec.engine_seed,
            detection_cache=spec.cache if spec.cache is not None else "unbounded",
            index=spec.repo_index,
        )
    except BaseException as exc:  # noqa: BLE001 - reported to the parent
        conn.send(("error", f"{type(exc).__name__}: {exc}"))
        return
    asyncio.run(
        serve_forever(
            engine,
            host=spec.host,
            port=0,
            config=spec.server,
            ready=lambda port: conn.send(("ok", port)),
            faults=spec.faults or None,
        )
    )


async def _reap(process, grace: float) -> bool:
    """Wait (without blocking the loop) up to ``grace``s for a child to
    die; True once it is dead."""
    loop = asyncio.get_running_loop()
    deadline = loop.time() + grace
    while process.is_alive() and loop.time() < deadline:
        # Polling is the only option: multiprocessing exposes no awaitable
        # for child death, and the 20ms cadence bounds reap latency.
        await asyncio.sleep(0.02)  # noqa: ASYNC110
    return not process.is_alive()


async def _cancel_until_done(tasks) -> None:
    """Cancel ``tasks`` and wait until every one has actually finished.

    A single cancel + gather can hang forever: ``asyncio.wait_for``
    swallows a cancellation that arrives in the same loop step its
    inner future settles (bpo-42130), so the task consumes the request
    and keeps running. Re-cancelling until the task exits guarantees a
    cancel eventually lands on a suspension point that honours it.
    """
    pending = {task for task in tasks if task is not None and not task.done()}
    for task in pending:
        task.cancel()
    while pending:
        done, pending = await asyncio.wait(pending, timeout=1.0)
        for task in pending:
            task.cancel()


class _Shard:
    """Router-side record of one shard process."""

    def __init__(self, index: int, process, conn, spec: _ShardSpec):
        self.index = index
        self.process = process
        self.conn = conn
        self.spec = spec
        self.port: Optional[int] = None
        self.client: Optional[FleetClient] = None
        #: Router-tracked sessions admitted to this shard and not yet
        #: terminal — what placement policies see as load.
        self.active = 0
        #: Submissions waiting in this shard's router-side queue.
        self.queued = 0
        self.queue: "asyncio.Queue[FleetHandle]" = asyncio.Queue()
        self.dispatcher: Optional[asyncio.Task] = None
        self.monitor: Optional[asyncio.Task] = None
        #: Bumped on every (re)launch; watchers and dispatchers capture
        #: it so a stale error cannot trigger recovery of a fresh
        #: incarnation.
        self.generation = 0
        #: Restarts performed so far (the circuit-breaker counter).
        self.restarts = 0
        #: A recovery pass is replacing this shard's process right now.
        self.recovering = False
        #: The circuit breaker tripped: this shard is out of rotation
        #: for the rest of the fleet's life.
        self.down = False

    @property
    def live(self) -> bool:
        return not self.down and not self.recovering and self.client is not None


class FleetHandle:
    """The router-side face of one submitted (possibly migrating) session.

    The fleet analogue of :class:`~repro.serving.server.SessionHandle`:
    :meth:`wait` / :meth:`result` survive a live migration transparently
    — they settle when the session reaches a terminal state that is not
    a migration staging pause, on whichever shard it ends up.
    """

    def __init__(self, item: WorkloadItem, seq: int):
        self.item = item
        self.seq = seq
        self.shard: Optional[int] = None
        self.remote = None  # RemoteSession once admitted
        self.migrations = 0
        #: Times this session was re-placed after losing its shard.
        self.recoveries = 0
        #: The router auto-checkpoints this session every
        #: ``checkpoint_every`` steps (set at submit time).
        self.supervised = False
        #: Latest v2 checkpoint envelope held router-side — the recovery
        #: table entry for this session (filled by the checkpoint cycle
        #: and by migrations).
        self.checkpoint_blob: Optional[bytes] = None
        #: Streamed ``samples`` events observed since the last stored
        #: checkpoint — the work a crash right now would redo.
        self.observed_steps = 0
        self._migrating = False
        self._recovering = False
        self._watch_task: Optional[asyncio.Task] = None
        self._admitted: "asyncio.Future" = (
            asyncio.get_running_loop().create_future()
        )
        self._settled: "asyncio.Future[dict]" = (
            asyncio.get_running_loop().create_future()
        )

    @property
    def tenant(self) -> str:
        return self.item.tenant

    @property
    def done(self) -> bool:
        return self._settled.done()

    async def admitted(self) -> None:
        """Wait until the session is accepted by a shard server."""
        await asyncio.shield(self._admitted)

    async def wait(self) -> str:
        """Await the terminal state: 'finished', 'paused' or 'failed'."""
        frame = await asyncio.shield(self._settled)
        return frame["state"]

    async def terminal(self) -> dict:
        return await asyncio.shield(self._settled)

    async def result(self):
        """Await completion and return the session's QueryOutcome."""
        frame = await self.terminal()
        if frame["state"] == "failed":
            _raise_typed(frame)
        if frame["state"] == "paused":
            raise QueryError(
                "session was paused before finishing; migrate or restore "
                "it to resume"
            )
        return pickle.loads(base64.b64decode(frame["outcome"]))

    def _settle(self, frame: dict) -> None:
        if not self._settled.done():
            self._settled.set_result(frame)

    def _fail(self, exc: BaseException) -> None:
        if not self._admitted.done():
            self._admitted.set_exception(exc)
        if not self._settled.done():
            self._settled.set_exception(exc)


def _cache_info_from_json(raw: Optional[dict]) -> Optional[CacheInfo]:
    """Rebuild a :class:`CacheInfo` from its wire (asdict) form."""
    if raw is None:
        return None
    return CacheInfo(
        policy=raw["policy"],
        hits=raw["hits"],
        misses=raw["misses"],
        size=raw["size"],
        capacity=raw["capacity"],
        per_scope={
            scope: ScopeCacheInfo(**counts)
            for scope, counts in raw.get("per_scope", {}).items()
        },
    )


@dataclass(frozen=True)
class FleetStats:
    """Point-in-time aggregate of every shard's :class:`ServerStats`.

    ``per_shard`` keeps each shard's full stats snapshot (as the JSON
    primitives the wire carries); the scalar fields are their sums.
    ``cache`` is the fleet-wide detection-cache view — with the shared
    cache, per-scope hit/miss counters aggregated across shard processes
    (:meth:`~repro.parallel.shm.SharedDetectionCache.aggregate_info`);
    otherwise the per-shard snapshots merged.
    """

    shards: int
    submitted: int
    finished: int
    paused: int
    failed: int
    in_flight: int
    queued: int
    detector_calls: int
    detector_frames: int
    migrations: int
    per_shard: List[dict]
    cache: Optional[CacheInfo] = None
    #: Shard processes relaunched by supervision.
    restarts: int = 0
    #: Sessions resumed from a recovery-table checkpoint after a crash.
    recovered_sessions: int = 0
    #: Sessions re-run from scratch (lost before their first checkpoint).
    rerun_sessions: int = 0
    #: Observed steps re-executed because a crash discarded them —
    #: bounded per recovery by ``checkpoint_every``.
    redone_steps: int = 0
    #: Idempotent client ops re-issued after transport failures.
    retries: int = 0
    #: Malformed wire lines survived (router clients + shard servers).
    wire_errors: int = 0
    #: Shards whose circuit breaker tripped (out of rotation).
    down_shards: List[int] = field(default_factory=list)

    def describe(self) -> str:
        """A compact human-readable multi-line summary."""
        lines = [
            (
                f"fleet: {self.shards} shards, "
                f"{self.finished}/{self.submitted} sessions finished "
                f"({self.paused} paused, {self.failed} failed, "
                f"{self.in_flight} in flight, {self.queued} queued, "
                f"{self.migrations} migrated)"
            ),
            (
                f"detector: {self.detector_calls} calls, "
                f"{self.detector_frames} frames across shards"
            ),
        ]
        if (
            self.restarts or self.recovered_sessions or self.rerun_sessions
            or self.redone_steps or self.retries or self.wire_errors
        ):
            lines.append(
                f"fault tolerance: {self.restarts} shard restarts, "
                f"{self.recovered_sessions} sessions recovered from "
                f"checkpoint, {self.rerun_sessions} rerun from scratch, "
                f"{self.redone_steps} steps redone, "
                f"{self.retries} client retries, "
                f"{self.wire_errors} wire errors survived"
            )
        if self.down_shards:
            lines.append(
                "DEGRADED: shards "
                + ", ".join(str(i) for i in self.down_shards)
                + " down (restart budget exhausted)"
            )
        for index, stats in enumerate(self.per_shard):
            if stats.get("down"):
                lines.append(f"shard {index}: DOWN")
                continue
            if stats.get("unreachable"):
                lines.append(f"shard {index}: unreachable (recovering)")
                continue
            lines.append(
                f"shard {index}: {stats['finished']}/{stats['submitted']} "
                f"finished, {stats['detector_calls']} detector calls, "
                f"{stats['detector_frames']} frames"
                + (" [draining]" if stats.get("draining") else "")
            )
        if self.cache is not None:
            lines.append(f"cache: {self.cache}")
            for scope in sorted(self.cache.per_scope):
                counts = self.cache.per_scope[scope]
                lines.append(
                    f"  scope {scope[:12]}…: {counts.hits} hits / "
                    f"{counts.misses} misses ({counts.hit_rate:.1%})"
                )
        return "\n".join(lines)


class FleetRouter:
    """Routes sessions across shard server processes.

    Build with :meth:`launch` (async classmethod) and tear down with
    :meth:`shutdown` — or use as an async context manager. Submission
    follows the placement policy unless the item pins a ``shard``;
    :meth:`migrate` moves a running session between shards with its
    trace intact.
    """

    def __init__(self, config: FleetConfig):
        self.config = config
        self.placement = make_placement_policy(config.placement)
        self.shards: List[_Shard] = []
        self._stores = []  # SharedWorldStores owned by this fleet
        self._cache: Optional[SharedDetectionCache] = None
        self._capacity = asyncio.Condition()
        self._handles: List[FleetHandle] = []
        self._watchers: "set[asyncio.Task]" = set()
        self._recovery_tasks: "set[asyncio.Task]" = set()
        self._ctx = None
        self._migrations = 0
        self._restarts = 0
        self._recovered = 0
        self._rerun = 0
        self._redone_steps = 0
        self._seq = 0
        self._closed = False

    # -- lifecycle -----------------------------------------------------------

    @classmethod
    async def launch(
        cls,
        dataset,
        n_shards: Optional[int] = None,
        *,
        config: Optional[FleetConfig] = None,
        engine_seed: int = 0,
        **overrides,
    ) -> "FleetRouter":
        """Spawn the shard processes and connect to them.

        ``config`` or keyword overrides build a :class:`FleetConfig`
        (``n_shards`` is accepted positionally for convenience). The
        dataset's world is published to shared memory for the duration
        of the fleet, so every start method ships it as a handle.
        """
        if config is not None and (overrides or n_shards is not None):
            raise ConfigError("pass config= or keyword overrides, not both")
        if config is None:
            if n_shards is not None:
                overrides["n_shards"] = n_shards
            config = FleetConfig(**overrides)
        router = cls(config)
        try:
            await router._start(dataset, engine_seed)
        except BaseException:
            await router.shutdown()
            raise
        return router

    async def _start(self, dataset, engine_seed: int) -> None:
        ctx = resolve_context(self.config.context)
        if ctx is None:
            import multiprocessing

            ctx = multiprocessing.get_context()
        self._ctx = ctx
        self._stores = publish_worlds([dataset.world])
        if self.config.shared_cache:
            # A private store per fleet: counters and entries belong to
            # this fleet's lifetime, not the process-global singleton.
            self._cache = SharedDetectionCache()
        faults = self.config.faults or FaultPlan()
        for index in range(self.config.n_shards):
            spec = _ShardSpec(
                index=index,
                dataset=dataset,
                engine_seed=engine_seed,
                cache=self._cache,
                server=self.config.server,
                host=self.config.host,
                repo_index=self.config.index,
                faults=faults.for_shard(index),
            )
            process, conn = self._spawn_process(spec)
            self.shards.append(_Shard(index, process, conn, spec))
        for shard in self.shards:
            status, payload = await self._await_startup(shard)
            if status != "ok":
                # One relaunch attempt before giving up: transient
                # resource blips (fd pressure, a slow manager handshake)
                # should not doom the whole fleet.
                shard.process, shard.conn = self._spawn_process(shard.spec)
                retried, payload2 = await self._await_startup(shard)
                if retried != "ok":
                    raise QueryError(
                        f"shard {shard.index} failed to start twice: "
                        f"{payload}; retry: {payload2}"
                    )
                payload = payload2
            shard.port = payload
            await self._connect_shard(shard)
        if self.config.supervise:
            for shard in self.shards:
                shard.monitor = asyncio.create_task(
                    self._monitor_shard(shard)
                )

    def _spawn_process(self, spec: _ShardSpec):
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_shard_main,
            args=(spec, child_conn),
            name=f"repro-shard-{spec.index}",
            # Daemonic children may not spawn children of their own — but
            # a shard whose server runs the *process* detector executor
            # must start pool workers. Those shards run non-daemonic;
            # shutdown's terminate→kill→reap escalation guarantees they
            # are collected on every exit path regardless.
            daemon=not _shard_spawns_children(spec.server),
        )
        process.start()
        child_conn.close()
        return process, parent_conn

    async def _connect_shard(self, shard: _Shard) -> None:
        """Open the client and start the dispatcher for a (re)launched shard."""
        shard.client = await FleetClient.connect(
            self.config.host,
            shard.port,
            op_timeout=self.config.op_timeout,
            retry=RetryPolicy(),
        )
        shard.dispatcher = asyncio.create_task(self._dispatch(shard))

    async def _await_startup(self, shard: _Shard):
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.config.launch_timeout
        while True:
            if shard.conn.poll(0):
                try:
                    return shard.conn.recv()
                except EOFError:
                    return (
                        "error",
                        "pipe closed before the shard reported a port "
                        f"(exit code {shard.process.exitcode})",
                    )
            if not shard.process.is_alive():
                return (
                    "error",
                    f"process exited with code {shard.process.exitcode} "
                    "before reporting a port",
                )
            if loop.time() > deadline:
                return (
                    "error",
                    f"no port after {self.config.launch_timeout:g}s "
                    "(process alive but silent)",
                )
            await asyncio.sleep(0.01)

    async def __aenter__(self) -> "FleetRouter":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.shutdown()

    async def shutdown(self) -> None:
        """Drain and stop every shard, reap the processes, free memory.

        Graceful by construction: each shard server drains (finishing
        accepted sessions) before its socket closes. Always returns with
        no zombie children: a process that ignores the drain is
        escalated ``terminate()`` → ``kill()`` and reaped. Idempotent.
        """
        if self._closed:
            return
        self._closed = True
        lifecycle = [
            shard.monitor for shard in self.shards if shard.monitor
        ] + list(self._recovery_tasks)
        await _cancel_until_done(lifecycle)
        await _cancel_until_done(
            [s.dispatcher for s in self.shards if s.dispatcher]
        )
        acked = set()
        for shard in self.shards:
            if shard.client is None:
                continue
            try:
                await shard.client.shutdown_server(drain=True)
                acked.add(shard.index)
            except (ReproError, ConnectionError, OSError,
                    asyncio.CancelledError):
                # A dead/hung shard cannot ack; escalation below reaps it.
                pass
            await shard.client.close()
        await _cancel_until_done(list(self._watchers))
        loop = asyncio.get_running_loop()
        deadline = loop.time() + 10.0
        for shard in self.shards:
            # Only shards that acked the drain get the graceful window;
            # a shard that couldn't even ack will never exit on its own.
            while (
                shard.index in acked
                and shard.process.is_alive()
                and loop.time() < deadline
            ):
                # No awaitable exists for child-process exit; poll with a
                # bounded deadline (kill below ends the wait regardless).
                await asyncio.sleep(0.02)  # noqa: ASYNC110
            if shard.process.is_alive():
                # The drain was ignored (wedged loop, stalled detector):
                # escalate terminate -> kill so shutdown always returns.
                shard.process.terminate()
                if not await _reap(shard.process, 2.0):
                    shard.process.kill()
                    await _reap(shard.process, 5.0)
            # join() on a dead child reaps the zombie entry.
            shard.process.join(timeout=1)
            shard.conn.close()
        for handle in self._handles:
            if not handle.done:
                handle._fail(QueryError("fleet shut down"))
        for store in self._stores:
            store.close()
        self._stores = []

    # -- submission ----------------------------------------------------------

    def _pick_shard(self, item: WorkloadItem) -> _Shard:
        down = [shard.index for shard in self.shards if shard.down]
        if item.shard is not None:
            if item.shard >= len(self.shards):
                raise ConfigError(
                    f"item pins shard {item.shard} but the fleet has "
                    f"{len(self.shards)} shards"
                )
            if self.shards[item.shard].down:
                raise FleetDegradedError(
                    f"item pins shard {item.shard}, which is down "
                    "(restart budget exhausted)",
                    down=down,
                )
            return self.shards[item.shard]
        # Recovering shards still queue (their dispatcher resumes after
        # the relaunch); only breaker-tripped shards leave the rotation.
        candidates = [shard for shard in self.shards if not shard.down]
        if not candidates:
            raise FleetDegradedError(
                f"all {len(self.shards)} shards are down", down=down
            )
        index = self.placement.choose(item, candidates)
        if not 0 <= index < len(candidates):
            raise ConfigError(
                f"placement policy {self.placement.name!r} chose shard "
                f"{index} of {len(candidates)}"
            )
        return candidates[index]

    async def submit(
        self, item: WorkloadItem, *, wait: bool = True
    ) -> FleetHandle:
        """Route one workload item to a shard; returns its handle.

        Admission mirrors the single server's: if the chosen shard has a
        free in-flight slot the submission dispatches immediately; else
        it waits in that shard's bounded router-side queue. With the
        queue full, ``wait=True`` backpressures (the coroutine waits for
        queue room) and ``wait=False`` raises
        :class:`~repro.errors.ServerOverloadedError`.
        """
        if self._closed:
            raise QueryError("fleet router is shut down")
        shard = self._pick_shard(item)
        async with self._capacity:
            while (
                shard.queued >= self.config.queue_capacity
                and shard.active >= self.config.server.max_in_flight
            ):
                if not wait:
                    raise ServerOverloadedError(
                        f"shard {shard.index} admission queue full "
                        f"({shard.queued} waiting, {shard.active} in flight)"
                    )
                await self._capacity.wait()
            handle = FleetHandle(item, self._seq)
            self._seq += 1
            handle.shard = shard.index
            handle.supervised = self._supervised(item)
            shard.queued += 1
        self._handles.append(handle)
        shard.queue.put_nowait(handle)
        return handle

    def _supervised(self, item: WorkloadItem) -> bool:
        """Whether the checkpoint cycle drives this item's session.

        Explicit ``pause_after`` wins: a user staging pause must land as
        a pause, not be consumed by the auto-checkpoint loop.
        """
        return (
            self.config.supervise
            and self.config.checkpoint_every is not None
            and item.pause_after is None
        )

    async def _dispatch(self, shard: _Shard) -> None:
        """Per-shard dispatcher: admit queued handles in arrival order."""
        generation = shard.generation
        while True:
            handle = await shard.queue.get()
            if shard.generation != generation or shard.down:
                # A swallowed cancellation (see _cancel_until_done) can
                # leave a stale dispatcher racing its successor on the
                # shared queue: hand the item back and bow out.
                shard.queue.put_nowait(handle)
                return
            async with self._capacity:
                while shard.active >= self.config.server.max_in_flight:
                    await self._capacity.wait()
                shard.active += 1
                shard.queued -= 1
                self._capacity.notify_all()
            pause_after = handle.item.pause_after
            stream = False
            if handle.supervised:
                pause_after = self.config.checkpoint_every
                stream = True
            try:
                remote = await shard.client.submit(
                    handle.item,
                    wait=True,
                    stream=stream,
                    pause_after=pause_after,
                )
            except BaseException as exc:  # noqa: BLE001 - settles the handle
                async with self._capacity:
                    shard.active -= 1
                    self._capacity.notify_all()
                if isinstance(exc, asyncio.CancelledError):
                    # Shutdown (handles fail there) or recovery (the
                    # handle is re-placed); either way not ours to fail.
                    raise
                if (
                    self.config.supervise
                    and not self._closed
                    and isinstance(exc, _TRANSPORT_ERRORS)
                ):
                    # The shard (or its socket) died under us: route the
                    # handle into recovery and exit — this generation's
                    # client is gone, and the relaunch starts a fresh
                    # dispatcher. Looping back into queue.get() instead
                    # would strand the recovery task: its cancel can be
                    # eaten by the wait_for race inside the submit above.
                    self._shard_error(shard, generation, str(exc))
                    self._schedule_replace(handle)
                    return
                handle._fail(exc)
                continue
            handle.remote = remote
            if not handle._admitted.done():
                handle._admitted.set_result(None)
            self._watch(handle, remote, shard)

    def _watch(self, handle: FleetHandle, remote, shard: _Shard) -> None:
        task = asyncio.create_task(self._watch_remote(handle, remote, shard))
        handle._watch_task = task
        self._watchers.add(task)
        task.add_done_callback(self._watchers.discard)

    async def _watch_remote(
        self, handle: FleetHandle, remote, shard: _Shard
    ) -> None:
        generation = shard.generation
        try:
            if handle.supervised:
                # Streamed events double as the redo ledger: steps seen
                # since the last stored checkpoint are exactly the work
                # a crash right now would redo.
                async for event in remote.events():
                    if event.get("event") == "samples":
                        handle.observed_steps += 1
            frame = await remote.terminal()
        except BaseException as exc:  # noqa: BLE001 - must settle the handle
            async with self._capacity:
                shard.active -= 1
                self._capacity.notify_all()
            if isinstance(exc, asyncio.CancelledError):
                # Cancelled by shutdown (fail the handle) or by recovery
                # (the handle is being re-placed; leave it pending).
                if not handle._migrating and not handle._recovering:
                    handle._fail(QueryError("fleet shut down"))
                raise
            if handle._migrating:
                return
            if (
                self.config.supervise
                and not self._closed
                and isinstance(exc, _TRANSPORT_ERRORS)
            ):
                self._shard_error(shard, generation, str(exc))
                self._schedule_replace(handle)
                return
            handle._fail(exc)
            return
        async with self._capacity:
            shard.active -= 1
            self._capacity.notify_all()
        if handle._migrating and frame["state"] == "paused":
            # A migration staging pause, not a terminal outcome: the
            # migrate() coroutine is mid-move and will re-watch the
            # session on its destination shard.
            return
        if (
            handle.supervised
            and frame["state"] == "paused"
            and not handle._migrating
            and not self._closed
        ):
            # A checkpoint-cycle pause: store the envelope in the
            # recovery table, then resume on the same shard.
            await self._cycle_checkpoint(handle, remote, shard, generation)
            return
        handle._migrating = False
        handle._settle(frame)

    async def _cycle_checkpoint(
        self, handle: FleetHandle, remote, shard: _Shard, generation: int
    ) -> None:
        """One turn of the auto-checkpoint loop: pull the envelope, resume.

        The session paused itself at a batch boundary (``pause_after`` =
        ``checkpoint_every``); its digest-checked checkpoint becomes the
        session's recovery-table entry, and the restore continues on the
        same shard with the next pause already armed. Determinism makes
        the stitched trace byte-identical to an uninterrupted run.
        """
        try:
            blob = await remote.checkpoint()
            handle.checkpoint_blob = blob
            handle.observed_steps = 0
            async with self._capacity:
                while (
                    shard.active >= self.config.server.max_in_flight
                    and shard.generation == generation
                    and not shard.down
                ):
                    await self._capacity.wait()
                if shard.generation != generation or shard.down:
                    raise ConnectionError("shard lost during checkpoint cycle")
                shard.active += 1
            try:
                new_remote = await shard.client.restore(
                    blob,
                    tenant=handle.item.tenant,
                    deadline=handle.item.deadline,
                    wait=True,
                    stream=True,
                    pause_after=self.config.checkpoint_every,
                )
            except BaseException:
                async with self._capacity:
                    shard.active -= 1
                    self._capacity.notify_all()
                raise
        except BaseException as exc:  # noqa: BLE001 - reroute, never hang
            if isinstance(exc, asyncio.CancelledError):
                if not handle._recovering:
                    handle._fail(QueryError("fleet shut down"))
                raise
            if (
                self.config.supervise
                and not self._closed
                and isinstance(exc, _TRANSPORT_ERRORS)
            ):
                self._shard_error(shard, generation, str(exc))
                self._schedule_replace(handle)
                return
            handle._fail(exc)
            return
        handle.remote = new_remote
        self._watch(handle, new_remote, shard)
        await self._evict_quietly(remote)

    @staticmethod
    async def _evict_quietly(remote) -> None:
        """Best-effort evict of a superseded incarnation's shard record.

        Without this every checkpoint cycle / migration leaves one paused
        ghost pinned in the shard server's stats history — unbounded
        memory on a long-lived fleet. Failure is fine: a lost shard is
        the monitor's problem, and the record dies with the process.
        """
        try:
            await remote.evict()
        except asyncio.CancelledError:
            raise
        except Exception:  # noqa: BLE001 - eviction is never load-bearing
            pass

    # -- supervision / recovery ----------------------------------------------

    async def _monitor_shard(self, shard: _Shard) -> None:
        """Per-shard supervisor: liveness watch + heartbeat probe.

        A dead process is obvious (``is_alive`` flips); a *hung* one is
        not — the process sits there while its event loop is wedged, so
        only an unanswered ``ping`` gives it away. ``missed_heartbeats``
        consecutive silent probes convict it and it is handled exactly
        like a crash (killed, relaunched, sessions recovered).
        """
        misses = 0
        while not self._closed:
            await asyncio.sleep(self.config.heartbeat_interval)
            if self._closed or shard.down:
                return
            if shard.recovering:
                misses = 0
                continue
            if not shard.process.is_alive():
                self._note_shard_trouble(
                    shard,
                    f"process exited with code {shard.process.exitcode}",
                )
                misses = 0
                continue
            try:
                await shard.client.ping(
                    timeout=self.config.heartbeat_timeout, retrying=False
                )
                misses = 0
            except asyncio.CancelledError:
                raise
            except Exception:  # noqa: BLE001 - a miss, judged by count
                misses += 1
                if misses >= self.config.missed_heartbeats:
                    self._note_shard_trouble(
                        shard,
                        f"{misses} consecutive heartbeats missed "
                        "(process alive but unresponsive)",
                    )
                    misses = 0

    def _shard_error(
        self, shard: _Shard, generation: int, reason: str
    ) -> None:
        """A watcher/dispatcher hit a transport error against ``shard``.

        Stale errors (from a generation recovery already replaced) are
        dropped — the fresh process must not be punished for its
        predecessor's corpse.
        """
        if shard.generation == generation and not shard.down:
            self._note_shard_trouble(shard, reason)

    def _note_shard_trouble(self, shard: _Shard, reason: str) -> None:
        """Funnel every failure signal into at most one recovery task."""
        if self._closed or not self.config.supervise:
            return
        if shard.down or shard.recovering:
            return
        shard.recovering = True
        task = asyncio.create_task(self._recover_shard(shard, reason))
        self._recovery_tasks.add(task)
        task.add_done_callback(self._recovery_tasks.discard)

    async def _recover_shard(self, shard: _Shard, reason: str) -> None:
        lost: List[FleetHandle] = []
        try:
            lost = await self._relaunch_shard(shard, reason)
        finally:
            # Clear the flag BEFORE re-placing: _await_live_shard skips
            # recovering shards, so re-placing first would deadlock a
            # one-shard fleet against its own recovery.
            shard.recovering = False
            async with self._capacity:
                self._capacity.notify_all()
        preferred = shard if not shard.down else None
        for handle in lost:
            await self._replace_handle(handle, preferred=preferred,
                                       force=True)

    async def _relaunch_shard(
        self, shard: _Shard, reason: str
    ) -> "List[FleetHandle]":
        """Replace a crashed/hung shard process; returns its lost sessions."""
        # 1. Quiesce the router's view of the shard: stop the dispatcher
        # and the watchers of every session it held.
        if shard.dispatcher is not None:
            await _cancel_until_done([shard.dispatcher])
            shard.dispatcher = None
        lost = [
            h for h in self._handles
            if h.shard == shard.index and not h.done and not h._recovering
        ]
        watch_tasks = []
        for handle in lost:
            handle._recovering = True
            task = handle._watch_task
            if task is not None and not task.done():
                watch_tasks.append(task)
        await _cancel_until_done(watch_tasks)
        drained = 0
        while not shard.queue.empty():
            shard.queue.get_nowait()
            drained += 1
        if shard.client is not None:
            await shard.client.close()
            shard.client = None
        # 2. Make sure the old process is dead (a hung one needs SIGKILL
        # — its loop is wedged, so SIGTERM's handler may never run),
        # then reap it.
        if shard.process.is_alive():
            shard.process.kill()
            await _reap(shard.process, 10.0)
        shard.process.join(timeout=1)
        shard.conn.close()
        async with self._capacity:
            shard.active = 0
            shard.queued -= drained
            self._capacity.notify_all()
        shard.generation += 1
        # 3. Circuit breaker: a shard that keeps dying stops being
        # restarted; its sessions move to survivors (or fail typed).
        while True:
            if shard.restarts >= self.config.max_restarts:
                shard.down = True
                break
            shard.restarts += 1
            self._restarts += 1
            shard.process, shard.conn = self._spawn_process(
                dataclass_replace(
                    shard.spec,
                    faults=FaultPlan(shard.spec.faults).surviving_relaunch(
                        shard.index
                    ),
                )
            )
            status, payload = await self._await_startup(shard)
            if status == "ok":
                shard.port = payload
                await self._connect_shard(shard)
                break
            if shard.process.is_alive():
                shard.process.kill()
                await _reap(shard.process, 10.0)
            shard.process.join(timeout=1)
            shard.conn.close()
        # The caller (_recover_shard) re-places the returned sessions on
        # the relaunched shard or survivors once the recovering flag is
        # cleared.
        return lost

    def _schedule_replace(self, handle: FleetHandle) -> None:
        """Re-place one lost session in the background."""
        if handle.done or handle._recovering:
            return
        handle._recovering = True
        task = asyncio.create_task(
            self._replace_handle(handle, force=True)
        )
        self._recovery_tasks.add(task)
        task.add_done_callback(self._recovery_tasks.discard)

    async def _await_live_shard(
        self, preferred: Optional[_Shard]
    ) -> Optional[_Shard]:
        """A shard fit to take recovered work; None once all are down."""
        async with self._capacity:
            while True:
                if self._closed:
                    return None
                if preferred is not None and preferred.live:
                    return preferred
                preferred = None
                candidates = [s for s in self.shards if s.live]
                if candidates:
                    return min(
                        candidates, key=lambda s: (s.active, s.index)
                    )
                if all(s.down for s in self.shards):
                    return None
                await self._capacity.wait()

    async def _replace_handle(
        self,
        handle: FleetHandle,
        preferred: Optional[_Shard] = None,
        force: bool = False,
    ) -> None:
        """Re-place one lost session: restore its recovery-table
        checkpoint, or resubmit from scratch if it never checkpointed.

        Loops across shards as needed (a target that dies mid-restore
        funnels into its own recovery and the session tries the next
        survivor); terminates because each shard's breaker eventually
        trips. Fails the handle with :class:`ShardLostError` only when
        no live shard remains.
        """
        if handle.done or self._closed:
            handle._recovering = False
            return
        if handle._recovering and not force:
            return
        handle._recovering = True
        try:
            while True:
                shard = await self._await_live_shard(preferred)
                preferred = None
                if shard is None:
                    if not self._closed:
                        handle._fail(ShardLostError(
                            "session lost with no live shard left to "
                            f"recover it (tenant {handle.item.tenant!r}, "
                            "restart budget exhausted)",
                            shard=handle.shard,
                        ))
                    return
                self._redone_steps += handle.observed_steps
                handle.observed_steps = 0
                if handle.checkpoint_blob is None:
                    # Never checkpointed: determinism makes a from-scratch
                    # re-run reproduce the exact same trace (including a
                    # user-staged pause_after, which re-arms unchanged).
                    self._rerun += 1
                    handle.recoveries += 1
                    async with self._capacity:
                        handle.shard = shard.index
                        handle.remote = None
                        shard.queued += 1
                    handle._recovering = False
                    shard.queue.put_nowait(handle)
                    return
                generation = shard.generation
                async with self._capacity:
                    while (
                        shard.active >= self.config.server.max_in_flight
                        and shard.generation == generation
                        and not shard.down
                    ):
                        await self._capacity.wait()
                    if shard.generation != generation or shard.down:
                        continue
                    shard.active += 1
                try:
                    remote = await shard.client.restore(
                        handle.checkpoint_blob,
                        tenant=handle.item.tenant,
                        deadline=handle.item.deadline,
                        wait=True,
                        stream=handle.supervised,
                        pause_after=(
                            self.config.checkpoint_every
                            if handle.supervised
                            else None
                        ),
                    )
                except BaseException as exc:  # noqa: BLE001 - retry or fail
                    async with self._capacity:
                        shard.active -= 1
                        self._capacity.notify_all()
                    if isinstance(exc, asyncio.CancelledError):
                        raise
                    if isinstance(exc, _TRANSPORT_ERRORS):
                        self._shard_error(shard, generation, str(exc))
                        await asyncio.sleep(0.02)
                        continue
                    handle._fail(exc)
                    return
                self._recovered += 1
                handle.recoveries += 1
                handle.shard = shard.index
                handle.remote = remote
                handle._recovering = False
                if not handle._admitted.done():
                    handle._admitted.set_result(None)
                self._watch(handle, remote, shard)
                return
        finally:
            handle._recovering = False

    # -- live migration ------------------------------------------------------

    async def migrate(self, handle: FleetHandle, to_shard: int) -> FleetHandle:
        """Move a running session to another shard, trace intact.

        Pause on the source shard, ship the checkpoint over the wire,
        restore on the destination (waiting for one of its in-flight
        slots — migrations bypass the router queue). The session's
        :meth:`FleetHandle.wait` / :meth:`~FleetHandle.result` callers
        never notice: the handle settles with the outcome from the
        destination shard, and determinism makes the merged trace
        byte-identical to a solo run. Returns the same handle.
        """
        if not 0 <= to_shard < len(self.shards):
            raise ConfigError(
                f"cannot migrate to shard {to_shard} of {len(self.shards)}"
            )
        if handle.remote is None:
            await handle.admitted()
        target = self.shards[to_shard]
        if handle.done:
            # Already terminal. A paused session (e.g. staged with
            # pause_after) is exactly what migration moves: re-open the
            # handle so wait()/result() callers see the continuation.
            if handle._settled.exception() is not None:
                raise QueryError("cannot migrate a failed session")
            frame = handle._settled.result()
            if frame["state"] != "paused":
                raise QueryError("session already reached a terminal state")
            handle._settled = asyncio.get_running_loop().create_future()
        else:
            handle._migrating = True
        source = self.shards[handle.shard] if handle.shard is not None else None
        try:
            if handle._migrating:
                await handle.remote.pause()
                frame = await handle.remote.terminal()
                if frame["state"] != "paused":
                    # Finished (or failed) before the pause landed —
                    # nothing left to move; settle with the genuine
                    # outcome.
                    handle._migrating = False
                    handle._settle(frame)
                    return handle
            blob = await handle.remote.checkpoint()
            # The move doubles as a recovery-table entry: if either end
            # dies from here on, this is the state to resume from.
            handle.checkpoint_blob = blob
            handle.observed_steps = 0
            async with self._capacity:
                while target.active >= self.config.server.max_in_flight:
                    await self._capacity.wait()
                target.active += 1
            try:
                remote = await target.client.restore(
                    blob,
                    tenant=handle.item.tenant,
                    deadline=handle.item.deadline,
                    wait=True,
                    stream=handle.supervised,
                    pause_after=(
                        self.config.checkpoint_every
                        if handle.supervised
                        else None
                    ),
                )
            except BaseException:
                async with self._capacity:
                    target.active -= 1
                    self._capacity.notify_all()
                raise
        except BaseException as exc:  # noqa: BLE001 - settles the handle
            handle._migrating = False
            if (
                self.config.supervise
                and not self._closed
                and not handle.done
                and isinstance(exc, _TRANSPORT_ERRORS)
            ):
                # A shard died mid-move. The migrate() caller still gets
                # the error (the move itself failed), but the session is
                # recoverable: flag whichever end broke and re-place the
                # handle from its last checkpoint (or from scratch — a
                # staged pause re-stages identically by determinism).
                for suspect in filter(None, (source, target)):
                    if not suspect.process.is_alive():
                        self._note_shard_trouble(
                            suspect, f"lost during migration: {exc}"
                        )
                self._schedule_replace(handle)
            elif not handle.done:
                handle._fail(exc)
            raise
        source_remote = handle.remote
        handle.remote = remote
        handle.shard = to_shard
        handle.migrations += 1
        handle._migrating = False
        self._migrations += 1
        self._watch(handle, remote, target)
        await self._evict_quietly(source_remote)
        return handle

    # -- introspection / draining --------------------------------------------

    async def drain(self) -> None:
        """Wait until every submitted session reached a terminal state."""
        while True:
            active = [h for h in self._handles if not h.done]
            if not active:
                return
            await asyncio.gather(
                *(h.terminal() for h in active), return_exceptions=True
            )

    async def stats(self) -> FleetStats:
        """Aggregate fleet statistics (one ``stats`` round-trip per shard).

        Each shard publishes its shared-cache counters while answering,
        so the fleet-wide per-scope cache breakdown is current as of
        this call.
        """
        per_shard = []
        retries = 0
        client_wire_errors = 0
        for shard in self.shards:
            if shard.down or shard.client is None:
                # A dead (or mid-recovery) shard can't answer; publish a
                # zero-filled row so aggregation and display stay total.
                per_shard.append(
                    {
                        "submitted": 0,
                        "finished": 0,
                        "paused": 0,
                        "failed": 0,
                        "in_flight": 0,
                        "queued": 0,
                        "detector_calls": 0,
                        "detector_frames": 0,
                        "draining": False,
                        "down" if shard.down else "unreachable": True,
                    }
                )
                continue
            retries += shard.client.retries
            client_wire_errors += shard.client.wire_errors
            try:
                per_shard.append(await shard.client.stats())
            except _TRANSPORT_ERRORS:
                per_shard.append(
                    {
                        "submitted": 0,
                        "finished": 0,
                        "paused": 0,
                        "failed": 0,
                        "in_flight": 0,
                        "queued": 0,
                        "detector_calls": 0,
                        "detector_frames": 0,
                        "draining": False,
                        "unreachable": True,
                    }
                )
        if self._cache is not None:
            cache = self._cache.aggregate_info()
        else:
            from repro.detection.cache import merge_cache_infos

            infos = [
                _cache_info_from_json(stats.get("cache"))
                for stats in per_shard
            ]
            cache = (
                merge_cache_infos(infos)
                if any(info is not None for info in infos)
                else None
            )
        return FleetStats(
            shards=len(self.shards),
            submitted=sum(s["submitted"] for s in per_shard),
            finished=sum(s["finished"] for s in per_shard),
            paused=sum(s["paused"] for s in per_shard),
            failed=sum(s["failed"] for s in per_shard),
            in_flight=sum(s["in_flight"] for s in per_shard),
            queued=sum(s["queued"] for s in per_shard)
            + sum(s.queued for s in self.shards),
            detector_calls=sum(s["detector_calls"] for s in per_shard),
            detector_frames=sum(s["detector_frames"] for s in per_shard),
            migrations=self._migrations,
            per_shard=per_shard,
            cache=cache,
            restarts=self._restarts,
            recovered_sessions=self._recovered,
            rerun_sessions=self._rerun,
            redone_steps=self._redone_steps,
            retries=retries,
            wire_errors=client_wire_errors
            + sum(s.get("wire_errors", 0) for s in per_shard),
            down_shards=[s.index for s in self.shards if s.down],
        )


async def replay_fleet(
    router: FleetRouter,
    items: Sequence[WorkloadItem],
    time_scale: float = 1.0,
) -> List[FleetHandle]:
    """Submit a workload to the fleet honouring arrival times.

    The fleet analogue of :func:`repro.serving.workload.replay`: items
    are submitted in arrival order (``time_scale=0`` as fast as
    admission allows), routed by the router's placement policy unless an
    item pins a ``shard``; items with ``pause_after`` pause there and
    stay checkpointable. The returned handles align with ``items``.
    """
    items = list(items)
    loop = asyncio.get_running_loop()
    start = loop.time()
    handles: "List[Optional[FleetHandle]]" = [None] * len(items)
    order = sorted(range(len(items)), key=lambda i: items[i].arrival)
    for index in order:
        item = items[index]
        if time_scale > 0:
            delay = item.arrival * time_scale - (loop.time() - start)
            if delay > 0:
                await asyncio.sleep(delay)
        handles[index] = await router.submit(item)
    return handles


def run_fleet(
    dataset,
    items: Sequence[WorkloadItem],
    *,
    config: Optional[FleetConfig] = None,
    engine_seed: int = 0,
    time_scale: float = 0.0,
    **overrides,
):
    """Blocking convenience: launch a fleet, replay a workload, tear down.

    Returns ``(summaries, fleet_stats)``: one summary dict per item
    (aligned with ``items``) carrying its routing and terminal facts —
    ``tenant``, ``object``, ``method``, ``shard``, ``migrations``,
    ``state``, ``num_samples``, ``num_results``, and for finished
    sessions the base64-pickled outcome (unpickle with
    :func:`outcome_of`). This is the loop behind ``repro fleet``.
    """

    async def _go():
        router = await FleetRouter.launch(
            dataset, config=config, engine_seed=engine_seed, **overrides
        )
        try:
            handles = await replay_fleet(router, items, time_scale=time_scale)
            summaries = []
            for handle in handles:
                try:
                    frame = await handle.terminal()
                except ReproError as exc:
                    frame = {
                        "state": "failed",
                        "error": type(exc).__name__,
                        "message": str(exc),
                        "num_samples": 0,
                        "num_results": 0,
                    }
                summaries.append(
                    {
                        "tenant": handle.item.tenant,
                        "object": handle.item.object,
                        "method": handle.item.method,
                        "shard": handle.shard,
                        "migrations": handle.migrations,
                        "recoveries": handle.recoveries,
                        "state": frame["state"],
                        "num_samples": frame.get("num_samples", 0),
                        "num_results": frame.get("num_results", 0),
                        "error": frame.get("error"),
                        "message": frame.get("message"),
                        "outcome": frame.get("outcome"),
                    }
                )
            stats = await router.stats()
            return summaries, stats
        finally:
            await router.shutdown()

    return asyncio.run(_go())


def outcome_of(summary: dict):
    """The :class:`~repro.query.engine.QueryOutcome` inside a finished
    :func:`run_fleet` summary (None for paused/failed sessions)."""
    if summary.get("state") != "finished" or summary.get("outcome") is None:
        return None
    return pickle.loads(base64.b64decode(summary["outcome"]))
