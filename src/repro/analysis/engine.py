"""Analysis driver: discover files, run rules, discharge findings.

Pipeline per file: parse once into a :class:`FileContext`, run every
selected rule over it, then mark findings suppressed (``# repro-lint:
allow[...]`` comments) and baselined (committed baseline file).  A run
*fails* iff any finding is left active.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from .baseline import Baseline
from .findings import FileContext, Finding
from .registry import RuleSpec, all_rules, get_rule
from .suppress import SuppressionTable

# Directories never worth descending into.
_SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules", "build", "dist"}


@dataclass
class LintResult:
    """Outcome of one analysis run."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    parse_errors: list[str] = field(default_factory=list)
    baseline_debt: int = 0

    @property
    def active(self) -> list[Finding]:
        return [f for f in self.findings if f.active]

    @property
    def ok(self) -> bool:
        return not self.active and not self.parse_errors


def discover(paths: list[Path]) -> list[Path]:
    """Expand files/directories into a sorted list of .py files."""
    out: set[Path] = set()
    for path in paths:
        if path.is_file() and path.suffix == ".py":
            out.add(path)
        elif path.is_dir():
            for sub in path.rglob("*.py"):
                if not any(part in _SKIP_DIRS for part in sub.parts):
                    out.add(sub)
    return sorted(out)


def select_rules(codes: list[str] | None = None) -> list[RuleSpec]:
    if codes is None:
        return all_rules()
    return [get_rule(code) for code in codes]


def check_file(
    path: Path, root: Path, rules: list[RuleSpec]
) -> tuple[list[Finding], str | None]:
    """Run ``rules`` over one file; returns (findings, parse_error)."""
    try:
        ctx = FileContext.load(path, root)
    except (SyntaxError, UnicodeDecodeError) as exc:
        return [], f"{path}: {exc}"
    table = SuppressionTable.parse(ctx.source)
    findings: list[Finding] = []
    for spec in rules:
        for f in spec.fn(ctx):
            if table.allows(f.rule, f.line):
                f = f.as_suppressed()
            findings.append(f)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings, None


def run(
    paths: list[Path],
    root: Path,
    rules: list[RuleSpec] | None = None,
    baseline: Baseline | None = None,
) -> LintResult:
    """Lint ``paths`` (files or directories) relative to ``root``."""
    specs = rules if rules is not None else all_rules()
    result = LintResult(baseline_debt=baseline.debt if baseline else 0)
    for path in discover(paths):
        findings, err = check_file(path, root, specs)
        result.files_checked += 1
        if err is not None:
            result.parse_errors.append(err)
        result.findings.extend(findings)
    if baseline is not None:
        result.findings = baseline.apply(result.findings)
    return result
