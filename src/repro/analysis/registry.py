"""Rule registry for the repro static-analysis engine.

A rule is a callable ``(FileContext) -> Iterable[Finding]`` registered
with :func:`register_rule`.  The decorator records the rule's code, a
short name, and the docstring (which must cite the PR or bug that
motivated the rule — rules here are distilled from this repo's actual
failure history, not imported from a generic style guide).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Iterable

from .findings import FileContext, Finding

RuleFn = Callable[[FileContext], Iterable[Finding]]

_CODE_RE = re.compile(r"^[A-Z]{3}\d{3}$")


@dataclass(frozen=True)
class RuleSpec:
    """A registered lint rule."""

    code: str
    name: str
    fn: RuleFn
    doc: str

    @property
    def summary(self) -> str:
        return self.doc.strip().splitlines()[0] if self.doc else self.name


_RULES: dict[str, RuleSpec] = {}


def register_rule(code: str, name: str) -> Callable[[RuleFn], RuleFn]:
    """Register a rule under ``code`` (e.g. ``DET101``).

    Codes group by prefix: DET determinism, AIO asyncio, LIF resource
    lifecycle, SER serialization/protocol.  Duplicate codes are a
    programming error and raise immediately.
    """
    if not _CODE_RE.match(code):
        raise ValueError(f"rule code {code!r} must match XXXDDD (e.g. DET101)")

    def deco(fn: RuleFn) -> RuleFn:
        if code in _RULES:
            raise ValueError(f"duplicate rule code {code!r}")
        doc = (fn.__doc__ or "").strip()
        if not doc:
            raise ValueError(f"rule {code} must have a docstring citing its motivation")
        _RULES[code] = RuleSpec(code=code, name=name, fn=fn, doc=doc)
        return fn

    return deco


def all_rules() -> list[RuleSpec]:
    """Registered rules in code order."""
    _ensure_loaded()
    return [_RULES[code] for code in sorted(_RULES)]


def get_rule(code: str) -> RuleSpec:
    _ensure_loaded()
    try:
        return _RULES[code]
    except KeyError:
        raise KeyError(f"unknown rule code {code!r}; known: {sorted(_RULES)}") from None


def _ensure_loaded() -> None:
    # Rule modules self-register on import; importing here avoids a
    # circular import at package-init time.
    from .rules import asyncio_rules, determinism, lifecycle, serialization  # noqa: F401
