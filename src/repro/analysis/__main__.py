"""``python -m repro.analysis`` — same entry as ``repro lint``."""

import sys

from ..cli import main

if __name__ == "__main__":
    sys.exit(main(["lint", *sys.argv[1:]]))
