"""Baseline file: grandfathered findings that don't fail the gate.

The baseline is a committed JSON file mapping finding fingerprints
(rule + path + line-content digest — tolerant of line-number drift) to
occurrence counts.  New code must come in clean; the baseline exists so
turning on a new rule doesn't force an unrelated mass rewrite, and so
lint debt is visible and burns down monotonically (``repro lint
--stats`` reports it).
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

from .findings import Finding

BASELINE_VERSION = 1
DEFAULT_BASELINE = "lint-baseline.json"


class Baseline:
    """Fingerprint → allowed-count table."""

    def __init__(self, entries: dict[str, int] | None = None):
        self.entries: dict[str, int] = dict(entries or {})

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.exists():
            return cls()
        data = json.loads(path.read_text(encoding="utf-8"))
        if data.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"unsupported baseline version {data.get('version')!r} in {path}"
            )
        entries = data.get("entries", {})
        if not all(
            isinstance(k, str) and isinstance(v, int) for k, v in entries.items()
        ):
            raise ValueError(f"malformed baseline entries in {path}")
        return cls(entries)

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        counts = Counter(f.fingerprint() for f in findings if not f.suppressed)
        return cls(dict(counts))

    def save(self, path: Path) -> None:
        payload = {
            "version": BASELINE_VERSION,
            "entries": {k: self.entries[k] for k in sorted(self.entries)},
        }
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    @property
    def debt(self) -> int:
        return sum(self.entries.values())

    def apply(self, findings: list[Finding]) -> list[Finding]:
        """Mark findings covered by the baseline, up to each entry's count.

        Matching is per-fingerprint with a budget: if the baseline allows
        2 occurrences and the tree now has 3, one stays active.
        """
        budget = Counter(self.entries)
        out: list[Finding] = []
        for f in findings:
            if f.suppressed:
                out.append(f)
                continue
            fp = f.fingerprint()
            if budget.get(fp, 0) > 0:
                budget[fp] -= 1
                out.append(f.as_baselined())
            else:
                out.append(f)
        return out
