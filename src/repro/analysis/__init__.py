"""repro.analysis — determinism/concurrency/lifecycle static analysis.

An AST-based lint suite whose rules are distilled from this repo's own
bug history (each rule's docstring cites the motivating PR).  Run it as
``repro lint`` or ``python -m repro.analysis``; findings are discharged
either by fixing them, by an inline ``# repro-lint: allow[CODE]``
comment with a justification, or by the committed baseline file.

Public surface::

    from repro.analysis import run_lint, all_rules, register_rule
"""

from .baseline import Baseline, DEFAULT_BASELINE
from .engine import LintResult, run as run_lint
from .findings import FileContext, Finding
from .registry import RuleSpec, all_rules, get_rule, register_rule
from .report import render_json, render_stats, render_text
from .suppress import SuppressionTable

__all__ = [
    "Baseline",
    "DEFAULT_BASELINE",
    "FileContext",
    "Finding",
    "LintResult",
    "RuleSpec",
    "SuppressionTable",
    "all_rules",
    "get_rule",
    "register_rule",
    "render_json",
    "render_stats",
    "render_text",
    "run_lint",
]
