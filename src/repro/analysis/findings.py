"""Finding and file-context types for the repro static-analysis engine.

A :class:`Finding` is one rule violation anchored to a file and line.  A
:class:`FileContext` bundles everything a rule needs to inspect one file:
the parsed AST, the raw source lines, the dotted module name, and the
suppression table parsed from ``# repro-lint:`` comments.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field, replace
from pathlib import Path


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific location.

    ``suppressed`` and ``baselined`` record how the finding was
    discharged; a finding with neither flag set is *active* and fails
    the lint gate.
    """

    rule: str
    path: str
    line: int
    message: str
    snippet: str = ""
    package: str = ""
    suppressed: bool = False
    baselined: bool = False

    @property
    def active(self) -> bool:
        return not (self.suppressed or self.baselined)

    def fingerprint(self) -> str:
        """Stable identity for baseline matching.

        Keyed on rule, path, and a digest of the stripped source line so
        the baseline survives unrelated edits that shift line numbers.
        """
        digest = hashlib.blake2b(
            self.snippet.strip().encode("utf-8"), digest_size=8
        ).hexdigest()
        return f"{self.rule}:{self.path}:{digest}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "snippet": self.snippet,
            "package": self.package,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
        }

    def as_suppressed(self) -> "Finding":
        return replace(self, suppressed=True)

    def as_baselined(self) -> "Finding":
        return replace(self, baselined=True)


@dataclass
class FileContext:
    """Everything a rule sees when visiting one file."""

    path: Path
    rel_path: str
    module: str
    package: str
    source: str
    lines: list[str] = field(default_factory=list)
    tree: ast.AST | None = None

    @classmethod
    def load(cls, path: Path, root: Path) -> "FileContext":
        source = path.read_text(encoding="utf-8")
        try:
            rel = path.relative_to(root)
        except ValueError:
            rel = path
        module = _module_name(rel)
        package = module.rsplit(".", 1)[0] if "." in module else module
        return cls(
            path=path,
            rel_path=str(rel),
            module=module,
            package=package,
            source=source,
            lines=source.splitlines(),
            tree=ast.parse(source, filename=str(path)),
        )

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def finding(self, rule: str, node_or_line, message: str) -> Finding:
        """Build a Finding anchored at an AST node or a line number."""
        line = getattr(node_or_line, "lineno", node_or_line)
        return Finding(
            rule=rule,
            path=self.rel_path,
            line=int(line),
            message=message,
            snippet=self.line_text(int(line)).strip(),
            package=self.package,
        )

    def in_package(self, prefixes: tuple[str, ...]) -> bool:
        """True when this file's module falls under any dotted prefix."""
        for prefix in prefixes:
            if self.module == prefix or self.module.startswith(prefix + "."):
                return True
        return False


def _module_name(rel: Path) -> str:
    parts = list(rel.with_suffix("").parts)
    # Anchor on the package root so files addressed by absolute path
    # (outside the lint root) still map to their repro.* module.
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    elif parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)
