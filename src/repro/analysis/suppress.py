"""Suppression comments for repro-lint findings.

Two forms, both parsed from comment tokens so they work anywhere a
comment is legal (including continuation lines):

``# repro-lint: allow[AIO201] reason...``
    Suppresses the listed rule codes on that physical line.

``# repro-lint: allow-file[DET102] reason...``
    Suppresses the listed rule codes for the whole file.  Must appear
    in the first 20 lines so it is visible at the top of the file.

Codes are comma-separated; ``allow[*]`` matches every rule.  A trailing
free-text justification is encouraged and ignored by the parser.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

_ALLOW_RE = re.compile(r"#\s*repro-lint:\s*allow(?P<scope>-file)?\[(?P<codes>[^\]]*)\]")

FILE_SCOPE_MAX_LINE = 20


@dataclass
class SuppressionTable:
    """Per-line and per-file rule suppressions for one source file."""

    line_allows: dict[int, set[str]] = field(default_factory=dict)
    file_allows: set[str] = field(default_factory=set)

    def allows(self, rule: str, line: int) -> bool:
        if "*" in self.file_allows or rule in self.file_allows:
            return True
        codes = self.line_allows.get(line)
        if codes is None:
            return False
        return "*" in codes or rule in codes

    @classmethod
    def parse(cls, source: str) -> "SuppressionTable":
        table = cls()
        try:
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            comments = [
                (tok.start[0], tok.string)
                for tok in tokens
                if tok.type == tokenize.COMMENT
            ]
        except tokenize.TokenError:
            comments = [
                (i + 1, line)
                for i, line in enumerate(source.splitlines())
                if "#" in line
            ]
        for lineno, text in comments:
            match = _ALLOW_RE.search(text)
            if match is None:
                continue
            codes = {c.strip() for c in match.group("codes").split(",") if c.strip()}
            if not codes:
                continue
            if match.group("scope"):
                if lineno <= FILE_SCOPE_MAX_LINE:
                    table.file_allows |= codes
            else:
                table.line_allows.setdefault(lineno, set()).update(codes)
        return table
