"""Reporters for lint results: text, JSON, and the --stats table."""

from __future__ import annotations

import json
from collections import Counter

from ..utils.tables import ascii_table
from .engine import LintResult
from .registry import all_rules


def render_text(result: LintResult, verbose: bool = False) -> str:
    """Grep-friendly ``path:line: CODE message`` lines plus a summary.

    By default only *active* findings print; ``verbose`` includes
    suppressed/baselined ones tagged with how they were discharged.
    """
    lines: list[str] = []
    for f in result.findings:
        if f.active:
            lines.append(f"{f.path}:{f.line}: {f.rule} {f.message}")
        elif verbose:
            how = "suppressed" if f.suppressed else "baselined"
            lines.append(f"{f.path}:{f.line}: {f.rule} [{how}] {f.message}")
    for err in result.parse_errors:
        lines.append(f"parse error: {err}")
    active = len(result.active)
    discharged = len(result.findings) - active
    lines.append(
        f"{result.files_checked} files checked: {active} finding(s)"
        + (f", {discharged} suppressed/baselined" if discharged else "")
    )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Machine-readable report for the CI artifact."""
    payload = {
        "ok": result.ok,
        "files_checked": result.files_checked,
        "active": len(result.active),
        "suppressed": sum(1 for f in result.findings if f.suppressed),
        "baselined": sum(1 for f in result.findings if f.baselined),
        "baseline_debt": result.baseline_debt,
        "parse_errors": result.parse_errors,
        "findings": [f.to_dict() for f in result.findings],
        "rules": {r.code: r.summary for r in all_rules()},
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_stats(result: LintResult) -> str:
    """Findings per rule and per package, plus baseline-debt totals.

    All findings (including discharged ones) count here — the point of
    --stats is burndown tracking across PRs, so suppressions and
    baseline entries are the interesting part.
    """
    by_rule: Counter[str] = Counter()
    rule_state: dict[str, Counter] = {}
    by_package: Counter[str] = Counter()
    for f in result.findings:
        by_rule[f.rule] += 1
        state = "active" if f.active else ("suppressed" if f.suppressed else "baselined")
        rule_state.setdefault(f.rule, Counter())[state] += 1
        by_package[f.package or "(none)"] += 1

    sections: list[str] = []
    rule_rows = []
    for spec in all_rules():
        states = rule_state.get(spec.code, Counter())
        rule_rows.append(
            (
                spec.code,
                spec.name,
                states["active"],
                states["suppressed"],
                states["baselined"],
            )
        )
    sections.append(
        ascii_table(
            ["rule", "name", "active", "suppressed", "baselined"],
            rule_rows,
            title="findings by rule",
        )
    )
    if by_package:
        sections.append(
            ascii_table(
                ["package", "findings"],
                sorted(by_package.items()),
                title="findings by package",
            )
        )
    sections.append(
        f"files checked: {result.files_checked}   "
        f"active: {len(result.active)}   baseline debt: {result.baseline_debt}"
    )
    return "\n\n".join(sections)
