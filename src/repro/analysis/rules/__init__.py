"""Lint rules distilled from this repo's bug history.

Rule modules self-register with :func:`repro.analysis.registry
.register_rule` on import.  Shared constants live here so every rule
agrees on which packages are *trace-affecting*: packages whose code can
influence which frames a sampling trace visits, and therefore must be
bit-reproducible across runs, processes, and platforms.
"""

from __future__ import annotations

# Packages where any nondeterminism changes sampling traces and breaks
# the paper's reproducibility claim.  ``repro.serving`` and
# ``repro.parallel`` are deliberately excluded: they host wall-clock
# timeouts and jittered backoff by design, and their determinism
# obligations are covered by the asyncio/lifecycle rules instead.
TRACE_AFFECTING = (
    "repro.core",
    "repro.query",
    "repro.baselines",
    "repro.detection",
    "repro.tracking",
    "repro.video",
    "repro.extensions",
    "repro.theory",
    "repro.index",
)
