"""Asyncio rules (AIO2xx).

The serving stack has been burned twice by well-known asyncio traps:
the bpo-42130 cancellation swallow in ``asyncio.wait_for`` (PR 8's
fleet-recovery deadlock) and "exception was never retrieved" spam from
abandoned tasks.  These rules encode the repo's house patterns.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import FileContext, Finding
from ..registry import register_rule

_SERVING = ("repro.serving",)


def _is_asyncio_attr(node: ast.expr, attr: str) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and node.attr == attr
        and isinstance(node.value, ast.Name)
        and node.value.id == "asyncio"
    )


@register_rule("AIO201", "bare-wait-for")
def bare_wait_for(ctx: FileContext) -> Iterator[Finding]:
    """``asyncio.wait_for`` must not wrap cancellation-sensitive awaits.

    Under bpo-42130, ``wait_for`` can swallow a ``CancelledError`` when
    cancellation races the inner future settling — PR 8 hit this as a
    fleet-recovery deadlock and introduced ``_cancel_until_done``
    (``serving/fleet.py``), which re-cancels until the task actually
    exits.  In ``repro.serving``, use that pattern; where ``wait_for``
    genuinely wraps a plain future with no cleanup obligations, suppress
    with a one-line justification.
    """
    if not ctx.in_package(_SERVING):
        return
    assert ctx.tree is not None
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call) and _is_asyncio_attr(node.func, "wait_for"):
            yield ctx.finding(
                "AIO201", node,
                "bare asyncio.wait_for in repro.serving; use the "
                "_cancel_until_done pattern (fleet.py) or suppress with a "
                "justification",
            )


def _is_create_task_call(call: ast.Call) -> bool:
    func = call.func
    if isinstance(func, ast.Attribute) and func.attr in (
        "create_task", "ensure_future"
    ):
        return True
    return isinstance(func, ast.Name) and func.id in ("create_task", "ensure_future")


@register_rule("AIO202", "dangling-task")
def dangling_task(ctx: FileContext) -> Iterator[Finding]:
    """Every spawned task must be retained or exception-retrieved.

    A ``create_task(...)`` whose result is discarded can vanish
    mid-flight (the loop holds only a weak reference) and logs
    "exception was never retrieved" if it fails — the exact spam PR 8's
    chaos harness had to chase down.  Keep the handle (``self._tasks``
    plus a ``discard`` done-callback is the house idiom, see
    ``serving/net.py``/``fleet.py``) or await it.  PR 9 fixed the one
    real offender: the detached shutdown task in ``NetServer
    ._op_shutdown``.
    """
    assert ctx.tree is not None
    for node in ast.walk(ctx.tree):
        if (
            isinstance(node, ast.Expr)
            and isinstance(node.value, ast.Call)
            and _is_create_task_call(node.value)
        ):
            yield ctx.finding(
                "AIO202", node,
                "fire-and-forget task: retain the handle or add a "
                "done-callback that retrieves exceptions",
            )


def _receiver_names(node: ast.expr) -> Iterator[str]:
    """Identifier components of a call receiver (``a.b.c`` -> c, b, a)."""
    while isinstance(node, ast.Attribute):
        yield node.attr
        node = node.value
    if isinstance(node, ast.Name):
        yield node.id


@register_rule("AIO204", "inline-detect-in-coroutine")
def inline_detect_in_coroutine(ctx: FileContext) -> Iterator[Finding]:
    """Detector calls inside coroutines must go through an executor.

    A direct ``detector.detect(...)`` / ``detector.detect_batch(...)``
    inside an ``async def`` in ``repro.serving`` blocks the event loop
    for the full model-inference latency — the regression the detector
    executors PR exists to prevent (fused batching cut detector calls
    5.33x but fused wall-clock *lost* to solo because ``detect_batch``
    ran inline on the loop).  Route the call through
    ``DetectorExecutor.submit`` (``serving/executors.py``) so runnable
    sessions keep proposing while detection runs off-loop; the inline
    executor exists for the rare case where blocking is intended, and
    makes that choice explicit.
    """
    if not ctx.in_package(_SERVING):
        return
    assert ctx.tree is not None
    for outer in ast.walk(ctx.tree):
        if not isinstance(outer, ast.AsyncFunctionDef):
            continue
        for node in ast.walk(outer):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("detect", "detect_batch")
            ):
                continue
            # Key on the receiver so the batcher's own async ``detect``
            # front door (``self._batcher.detect(...)``) stays legal.
            if any(
                "detector" in name.lower()
                for name in _receiver_names(node.func.value)
            ):
                yield ctx.finding(
                    "AIO204", node,
                    f"direct detector.{node.func.attr} inside a coroutine "
                    "blocks the event loop; submit through a "
                    "DetectorExecutor (serving/executors.py)",
                )


@register_rule("AIO203", "deprecated-get-event-loop")
def deprecated_get_event_loop(ctx: FileContext) -> Iterator[Finding]:
    """Use ``asyncio.get_running_loop()``, never ``get_event_loop()``.

    ``get_event_loop()`` silently *creates* a loop outside a running
    coroutine, which on worker threads (the PR 5 server's off-thread
    submit path) yields a second, never-run loop and futures that hang
    forever.  ``get_running_loop()`` raises instead of guessing — the
    failure is immediate and debuggable.
    """
    assert ctx.tree is not None
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call) and _is_asyncio_attr(
            node.func, "get_event_loop"
        ):
            yield ctx.finding(
                "AIO203", node,
                "asyncio.get_event_loop() is deprecated and loop-creating; "
                "use get_running_loop() (or run_coroutine_threadsafe from "
                "other threads)",
            )
