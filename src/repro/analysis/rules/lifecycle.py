"""Resource-lifecycle rules (LIF3xx).

Shared-memory segments and on-disk index segments are the two resources
this repo leaks when lifecycle discipline slips: ``/dev/shm`` fills up
across test runs, and a torn segment write poisons every future reader.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import FileContext, Finding
from ..registry import register_rule

_INDEX = ("repro.index",)


@register_rule("LIF301", "shm-without-unlink")
def shm_without_unlink(ctx: FileContext) -> Iterator[Finding]:
    """``SharedMemory(create=True)`` needs a reachable ``unlink()``.

    A created-but-never-unlinked segment outlives the process in
    ``/dev/shm`` until reboot; PR 3's worker pools leaked segments on
    crashed runs until ``parallel/shm.py`` grew its ``close()`` +
    ``atexit`` backstop.  Any module that creates a segment must also
    call ``.unlink()`` somewhere (a ``close``/``finally``/``atexit``
    path) — this rule checks module-level reachability, which is
    deliberately coarse: moving the unlink out of the module entirely is
    the failure mode seen in practice.
    """
    assert ctx.tree is not None
    creates: list[ast.Call] = []
    has_unlink = False
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        if name == "SharedMemory" and any(
            kw.arg == "create"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is True
            for kw in node.keywords
        ):
            creates.append(node)
        if isinstance(func, ast.Attribute) and func.attr == "unlink":
            has_unlink = True
    if creates and not has_unlink:
        for call in creates:
            yield ctx.finding(
                "LIF301", call,
                "SharedMemory(create=True) with no .unlink() anywhere in "
                "this module; segments will outlive the process in /dev/shm",
            )


def _write_modes(call: ast.Call) -> bool:
    """True if this ``open(...)`` call opens for writing."""
    mode: ast.expr | None = None
    if len(call.args) >= 2:
        mode = call.args[1]
    for kw in call.keywords:
        if kw.arg == "mode":
            mode = kw.value
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return any(ch in mode.value for ch in ("w", "x", "a", "+"))
    return False


@register_rule("LIF302", "non-atomic-segment-write")
def non_atomic_segment_write(ctx: FileContext) -> Iterator[Finding]:
    """Index writers must use temp-file + atomic rename.

    ``repro.index`` stores append-only digest-checked segments shared by
    concurrent readers (PR 7).  A function that opens a file for writing
    in place can be interrupted mid-write, leaving a torn envelope that
    fails digest verification for every future reader.  House pattern:
    write to a same-directory temp file, fsync, then ``os.replace()``
    (``index/store.py:_write_envelope``).  Each writing function must
    contain an ``os.replace``/``os.rename`` call.
    """
    if not ctx.in_package(_INDEX):
        return
    assert ctx.tree is not None
    for fn in ast.walk(ctx.tree):
        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        opens: list[ast.Call] = []
        has_rename = False
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id == "open" and _write_modes(node):
                opens.append(node)
            if isinstance(func, ast.Attribute) and func.attr in (
                "replace", "rename"
            ) and isinstance(func.value, ast.Name) and func.value.id == "os":
                has_rename = True
        if opens and not has_rename:
            for call in opens:
                yield ctx.finding(
                    "LIF302", call,
                    f"in-place write in repro.index ({fn.name}); use the "
                    "temp-file + os.replace pattern from store._write_envelope",
                )
