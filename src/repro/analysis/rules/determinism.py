"""Determinism rules (DET1xx).

ExSample's result tables only replicate if a run's sampling trace is a
pure function of ``(dataset, config, run_seed)``.  These rules fence off
the three nondeterminism sources that have actually bitten this repo:
module-global RNG state, wall-clock reads, and hash-order iteration.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import FileContext, Finding
from ..registry import register_rule
from . import TRACE_AFFECTING

# Constructor-style attributes on the ``random`` / ``np.random`` modules
# that build an *instance* (seedable, injectable) rather than touching
# the hidden module-global stream.
_RANDOM_CONSTRUCTORS = frozenset({"Random", "SystemRandom"})
_NP_RANDOM_CONSTRUCTORS = frozenset(
    {"Generator", "Philox", "PCG64", "PCG64DXSM", "MT19937", "SFC64",
     "SeedSequence", "BitGenerator", "default_rng"}
)

_WALL_CLOCK_TIME_ATTRS = frozenset(
    {"time", "time_ns", "perf_counter", "perf_counter_ns",
     "monotonic", "monotonic_ns"}
)


def _module_aliases(tree: ast.AST, module: str) -> set[str]:
    """Names that refer to ``module`` via ``import module [as alias]``."""
    aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == module:
                    aliases.add(alias.asname or alias.name)
    return aliases


def _attr_call_root(call: ast.Call) -> tuple[str, str] | None:
    """For ``name.attr(...)`` return ``(name, attr)``; else None."""
    func = call.func
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        return func.value.id, func.attr
    return None


@register_rule("DET101", "module-global-rng")
def module_global_rng(ctx: FileContext) -> Iterator[Finding]:
    """Library code must not draw from the module-global RNG stream.

    ``random.uniform()`` / ``np.random.shuffle()`` etc. read hidden
    process-global state that any import or concurrent caller can
    perturb, so two runs with the same seed diverge.  All randomness
    must flow through an injected ``random.Random`` / seeded
    ``np.random.Generator`` / ``TransientRng`` (see ``repro.utils.rng``).
    Motivated by PR 9's audit: ``RetryPolicy.backoff`` jitter in
    ``serving/net.py`` drew from the global ``random`` module, coupling
    wire-retry timing to every other consumer of that stream.
    """
    assert ctx.tree is not None
    random_names = _module_aliases(ctx.tree, "random")
    numpy_names = _module_aliases(ctx.tree, "numpy")
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        root = _attr_call_root(node)
        if root is not None:
            name, attr = root
            if name in random_names and attr not in _RANDOM_CONSTRUCTORS:
                yield ctx.finding(
                    "DET101", node,
                    f"call to module-global random.{attr}(); inject a "
                    "random.Random or TransientRng instead",
                )
            continue
        # np.random.<fn>(...) — a two-level attribute chain.
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Attribute)
            and isinstance(func.value.value, ast.Name)
            and func.value.value.id in numpy_names
            and func.value.attr == "random"
            and func.attr not in _NP_RANDOM_CONSTRUCTORS
        ):
            yield ctx.finding(
                "DET101", node,
                f"call to np.random.{func.attr}() uses the legacy global "
                "stream; use a seeded np.random.Generator",
            )


@register_rule("DET102", "wall-clock-in-trace")
def wall_clock_in_trace(ctx: FileContext) -> Iterator[Finding]:
    """Trace-affecting packages must not read the wall clock.

    A ``time.time()`` / ``time_ns()`` / ``perf_counter()`` value that
    reaches chunk scoring, sampling order, or persisted identifiers
    makes runs irreproducible.  Timing belongs in ``repro.serving`` /
    benchmarks, or behind an injected clock.  Motivated by the PR 7
    index design: segment payloads are digest-addressed precisely so
    that nothing trace-visible depends on when a segment was written
    (``index/store.py`` carries the one audited, suppressed exception —
    a merge-order filename hint that never enters a trace).
    """
    if not ctx.in_package(TRACE_AFFECTING):
        return
    assert ctx.tree is not None
    time_names = _module_aliases(ctx.tree, "time")
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        root = _attr_call_root(node)
        if root is None:
            continue
        name, attr = root
        if name in time_names and attr in _WALL_CLOCK_TIME_ATTRS:
            yield ctx.finding(
                "DET102", node,
                f"wall-clock read time.{attr}() in trace-affecting package "
                f"{ctx.package}; inject a clock or move timing out of core",
            )
        elif attr in ("now", "utcnow") and name in ("datetime", "date"):
            yield ctx.finding(
                "DET102", node,
                f"wall-clock read {name}.{attr}() in trace-affecting "
                f"package {ctx.package}",
            )


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


@register_rule("DET103", "unordered-set-iteration")
def unordered_set_iteration(ctx: FileContext) -> Iterator[Finding]:
    """Trace-affecting loops must not iterate sets without ``sorted()``.

    Set iteration order depends on hash seeds and insertion history, so
    it differs across processes (PYTHONHASHSEED) and platforms.  PR 3
    fixed exactly this class of bug for cross-process determinism: any
    unordered collection feeding a trace-affecting loop must pass
    through ``sorted()`` first.  PR 9's audit caught another instance in
    ``core/estimator.py`` (``SeenCounter.observe_frame``).
    """
    if not ctx.in_package(TRACE_AFFECTING):
        return
    assert ctx.tree is not None
    iter_exprs: list[ast.expr] = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iter_exprs.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            iter_exprs.extend(gen.iter for gen in node.generators)
    for expr in iter_exprs:
        if _is_set_expr(expr):
            yield ctx.finding(
                "DET103", expr,
                "iterating a set in a trace-affecting package; wrap in "
                "sorted() so order is independent of hash seeds",
            )


@register_rule("DET104", "unseeded-default-rng")
def unseeded_default_rng(ctx: FileContext) -> Iterator[Finding]:
    """``np.random.default_rng()`` without a seed is entropy-seeded.

    An argument-less ``default_rng()`` pulls OS entropy, so every run
    gets a different stream.  Trace-affecting code must derive
    generators from the run seed — ``spawn_rng`` / ``RngFactory`` in
    ``repro.utils.rng`` exist for exactly this (PR 1's seed-derivation
    design, hardened for worker processes in PR 3).
    """
    if not ctx.in_package(TRACE_AFFECTING):
        return
    assert ctx.tree is not None
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call) or node.args or node.keywords:
            continue
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        if name == "default_rng":
            yield ctx.finding(
                "DET104", node,
                "default_rng() with no seed draws OS entropy; derive the "
                "generator from the run seed (see repro.utils.rng)",
            )
