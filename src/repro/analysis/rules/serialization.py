"""Serialization & wire-protocol rules (SER4xx).

Checkpoints pickle searcher state across processes (PR 2, PR 8) and the
wire protocol retries ops through ``RetryPolicy`` (PR 8); both impose
structural contracts that are invisible at the call site and easy to
break in review — so they are linted.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import FileContext, Finding
from ..registry import register_rule

_SERVING = ("repro.serving",)


def _is_register_searcher(deco: ast.expr) -> bool:
    target = deco.func if isinstance(deco, ast.Call) else deco
    if isinstance(target, ast.Name):
        return target.id == "register_searcher"
    if isinstance(target, ast.Attribute):
        return target.attr == "register_searcher"
    return False


@register_rule("SER401", "factory-captures-closure")
def factory_captures_closure(ctx: FileContext) -> Iterator[Finding]:
    """``@register_searcher`` factories must stay picklable.

    PR 2 broke checkpointing by giving ``FusionSearcher`` a
    lambda-valued score accessor: the searcher pickled fine locally but
    died on spawn-start workers, because lambdas and nested functions
    pickle by qualified name and closures don't survive at all.  PR 2's
    fix introduced module-level callable classes (``ArrayChunkScores``),
    and checkpoint-reachable state has been closure-free since.  This
    rule keeps it that way: no ``lambda`` and no nested ``def`` inside a
    registered factory body.
    """
    assert ctx.tree is not None
    for fn in ast.walk(ctx.tree):
        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not any(_is_register_searcher(d) for d in fn.decorator_list):
            continue
        for node in ast.walk(fn):
            if node is fn:
                continue
            if isinstance(node, ast.Lambda):
                yield ctx.finding(
                    "SER401", node,
                    f"lambda inside @register_searcher factory {fn.name}; "
                    "use a module-level callable class so checkpoints pickle",
                )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield ctx.finding(
                    "SER401", node,
                    f"nested def {node.name} inside @register_searcher "
                    f"factory {fn.name}; hoist to module level so "
                    "checkpoints pickle",
                )


def _op_idempotency_keys(tree: ast.AST) -> set[str] | None:
    """String keys of a module-level ``OP_IDEMPOTENCY`` dict, else None."""
    for node in ast.walk(tree):
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "OP_IDEMPOTENCY":
                if isinstance(value, ast.Dict):
                    return {
                        k.value
                        for k in value.keys
                        if isinstance(k, ast.Constant) and isinstance(k.value, str)
                    }
                return set()
    return None


@register_rule("SER402", "op-without-idempotency")
def op_without_idempotency(ctx: FileContext) -> Iterator[Finding]:
    """Every wire-op handler must declare idempotency for RetryPolicy.

    ``FleetClient`` retries ops after transport errors (PR 8), where the
    server may or may not have executed the request — so retrying is
    only safe for ops *declared* idempotent.  Exception-to-typed-frame
    mapping is centralized in ``NetServer._dispatch``; what review keeps
    missing is the retry contract of a *new* op.  This rule requires a
    module-level ``OP_IDEMPOTENCY`` dict in any ``repro.serving`` module
    that defines ``_op_*`` handlers, with one entry per handler.
    """
    if not ctx.in_package(_SERVING):
        return
    assert ctx.tree is not None
    ops: list[tuple[str, ast.AST]] = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(
                    item, (ast.FunctionDef, ast.AsyncFunctionDef)
                ) and item.name.startswith("_op_"):
                    ops.append((item.name[len("_op_"):], item))
    if not ops:
        return
    declared = _op_idempotency_keys(ctx.tree)
    if declared is None:
        yield ctx.finding(
            "SER402", ops[0][1],
            f"{ctx.module} defines _op_* handlers but no module-level "
            "OP_IDEMPOTENCY dict declaring their retry safety",
        )
        return
    for op, node in ops:
        if op not in declared:
            yield ctx.finding(
                "SER402", node,
                f"op {op!r} missing from OP_IDEMPOTENCY; declare whether "
                "RetryPolicy may retry it",
            )
