"""Exception hierarchy for the :mod:`repro` library.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while still letting programming errors (``TypeError`` and
friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class ExhaustedError(ReproError):
    """A sampler was asked for a frame but every frame has been consumed."""


class ChunkingError(ReproError):
    """A chunking policy produced an invalid partition of a repository."""


class DatasetError(ReproError):
    """A synthetic dataset specification is inconsistent."""


class QueryError(ReproError):
    """A query is malformed or cannot be executed against the repository."""


class SolverError(ReproError):
    """The optimal-weight solver failed to converge to a feasible point."""


class ServerOverloadedError(ReproError):
    """A query server's admission queue is full and the caller asked not
    to wait (``submit(..., wait=False)``)."""


class ServerDrainingError(ReproError):
    """A query server is draining: it no longer admits new sessions but
    finishes (or checkpoints) the ones already accepted. Retry against
    another server — a fleet router does this automatically."""


class ProtocolError(ReproError):
    """A wire-protocol frame was malformed or violated the protocol
    (unknown op, missing field, undecodable JSON)."""
