"""Exception hierarchy for the :mod:`repro` library.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while still letting programming errors (``TypeError`` and
friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class ExhaustedError(ReproError):
    """A sampler was asked for a frame but every frame has been consumed."""


class ChunkingError(ReproError):
    """A chunking policy produced an invalid partition of a repository."""


class DatasetError(ReproError):
    """A synthetic dataset specification is inconsistent."""


class QueryError(ReproError):
    """A query is malformed or cannot be executed against the repository."""


class SolverError(ReproError):
    """The optimal-weight solver failed to converge to a feasible point."""


class ServerOverloadedError(ReproError):
    """A query server's admission queue is full and the caller asked not
    to wait (``submit(..., wait=False)``)."""


class ServerDrainingError(ReproError):
    """A query server is draining: it no longer admits new sessions but
    finishes (or checkpoints) the ones already accepted. Retry against
    another server — a fleet router does this automatically."""


class ProtocolError(ReproError):
    """A wire-protocol frame was malformed or violated the protocol
    (unknown op, missing field, undecodable JSON)."""


class WireTimeoutError(ReproError):
    """A wire-protocol request exceeded its per-op timeout. The request
    may or may not have reached the server — only retry operations that
    are idempotent (``ping``, ``stats``, stream re-subscription)."""


class ShardLostError(ReproError):
    """A fleet shard exhausted its restart budget (``max_restarts``) and
    was taken out of rotation; sessions that could not be re-placed on a
    surviving shard fail with this error instead of hanging forever.

    ``shard`` carries the index of the lost shard when known.
    """

    def __init__(self, message: str, shard=None):
        super().__init__(message)
        self.shard = shard


class FleetDegradedError(ReproError):
    """The fleet cannot serve a request because shards are down — e.g. a
    submission pins a dead shard, or every shard tripped its circuit
    breaker. ``down`` lists the indexes of the unavailable shards.
    """

    def __init__(self, message: str, down=()):
        super().__init__(message)
        self.down = tuple(down)
