"""repro — a full reproduction of *ExSample: Efficient Searches on Video
Repositories through Adaptive Sampling* (Moll et al., ICDE 2022).

The library has four layers:

* :mod:`repro.core` — ExSample itself: the N1/n estimator, Gamma beliefs,
  Thompson sampling, random+ frame orders, and the Algorithm 1 loop.
* substrates — :mod:`repro.video` (repositories, chunking, synthetic ground
  truth, the six evaluation datasets), :mod:`repro.detection` (simulated
  object detector and proxy scorer), :mod:`repro.tracking` (IoU tracker and
  the distinct-object discriminator).
* :mod:`repro.baselines` — random, random+, sequential, BlazeIt-style proxy
  ordering, and the Eq. IV.1 oracle.
* :mod:`repro.query` / :mod:`repro.experiments` — the user-facing engine and
  the harnesses regenerating every table and figure in the paper.
* :mod:`repro.serving` — the asyncio multi-tenant server: many concurrent
  sessions on one event loop, detector requests fused across them.
* :mod:`repro.index` — the persistent repository index: completed queries
  record detections, per-chunk sampling counts and outcomes on disk, so
  later queries warm-start and exact repeats replay with zero detection.

Quickstart::

    from repro import DistinctObjectQuery, QueryEngine, make_dataset

    dataset = make_dataset("dashcam", scale=0.05, seed=0)
    engine = QueryEngine(dataset, seed=0)
    outcome = engine.run(DistinctObjectQuery("traffic light", limit=20))
    print(outcome.num_results, "distinct objects in",
          outcome.trace.num_samples, "frames")
"""

from repro.core import ExSampleConfig, ExSampleSearcher, SearchTrace
from repro.index import RepositoryIndex
from repro.query import (
    SEARCH_METHODS,
    BudgetExhausted,
    CostModel,
    DistinctObjectQuery,
    QueryEngine,
    QueryOutcome,
    QuerySession,
    ResultFound,
    SampleBatch,
    register_searcher,
    savings_ratio,
)
from repro.serving import QueryServer, ServerConfig
from repro.video import make_dataset

__version__ = "1.0.0"

__all__ = [
    "BudgetExhausted",
    "CostModel",
    "DistinctObjectQuery",
    "ExSampleConfig",
    "ExSampleSearcher",
    "QueryEngine",
    "QueryOutcome",
    "QueryServer",
    "QuerySession",
    "RepositoryIndex",
    "ResultFound",
    "ServerConfig",
    "SEARCH_METHODS",
    "SampleBatch",
    "SearchTrace",
    "__version__",
    "make_dataset",
    "register_searcher",
    "savings_ratio",
]
