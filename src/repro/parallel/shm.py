"""Shared-memory state transport for process-parallel experiments.

ExSample's premise is that detector invocations dominate cost, so the
machinery *around* detection must be as close to free as the OS allows.
The process-parallel backbone (:mod:`repro.experiments.parallel`) broke
that premise in two ways: every task shipped to a worker re-pickled the
entire :class:`~repro.video.synthetic.SyntheticWorld` (megabytes of
``ObjectInstance`` objects, serialized per *task*, not per worker), and
every worker warmed its own private detection memo, re-paying detection
for frames a sibling had already resolved. EKO (Bang et al., 2021) makes
the same observation for adaptive video sampling at large: amortize
storage and decode state across queries so only the sampling logic stays
on the hot path.

This module closes both gaps:

:class:`SharedWorldStore`
    Parent-side owner of one world's columnar state in a named POSIX
    ``multiprocessing.shared_memory`` segment. Publishing a world flips
    its pickle representation to a ~100-byte :class:`SharedWorldHandle`;
    workers that unpickle the handle attach the segment **once per
    process** (memoized) and rebuild the world as zero-copy numpy views
    over the parent's pages. Spawn-start platforms stop paying per-task
    world serialization entirely; fork platforms stop paying it for
    tasks submitted after a copy-on-write fault would have.

:class:`SharedDetectionCache`
    One detection memo for every process in a pool: a dict proxy served
    by a ``multiprocessing.Manager`` holding *serialized* detection rows
    keyed like :class:`~repro.detection.cache.DetectionCache`. The
    manager server executes each dict operation atomically, and because
    detection is a pure function of ``(seed, video, frame)``, concurrent
    writers racing on one key store byte-identical rows — last write
    wins harmlessly, so no cross-operation lock is needed. Adopt it
    through the existing cache knob: ``QueryEngine(dataset,
    detection_cache="shared")`` or CLI ``--cache shared``.

Segment lifecycle is owned by whoever created the store (normally the
pool lifecycle in :func:`repro.experiments.parallel.parallel_map`):
``close()`` unlinks the segment on normal exit *and* on worker crash
(the pool context manager unwinds through it), and an ``atexit`` hook
backstops segments a hard error left behind. Workers deliberately hand
segment ownership back to the parent after attaching — Python's
resource tracker would otherwise unlink a segment the parent still
serves the moment any one worker exits.
"""

from __future__ import annotations

import atexit
import os
import pickle
import struct
import uuid
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.detection.cache import (
    CacheInfo,
    CacheKey,
    DetectionCache,
    ScopeCacheInfo,
)
from repro.errors import ConfigError

__all__ = [
    "SharedDetectionCache",
    "SharedWorldHandle",
    "SharedWorldStore",
    "adopt_shared_cache",
    "attach_shared_world",
    "publish_worlds",
    "shared_detection_cache",
]

#: Every segment this library creates carries this prefix, so hygiene
#: tests (and a worried operator listing /dev/shm) can tell ours apart.
SEGMENT_PREFIX = "repro_shm_"

#: Segment header: (meta pickle length, absolute offset of the array area).
_HEADER = struct.Struct("<QQ")

#: Array starts are aligned for fast int64/float64 views.
_ALIGN = 64


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


@dataclass(frozen=True)
class SharedWorldHandle:
    """The pickled form of a published world: a segment name, nothing else.

    All layout information (array dtypes/shapes/offsets, video metadata,
    class names) lives inside the segment's own header, so the handle
    stays ~100 bytes however large the world is.
    """

    segment: str


#: Parent-side stores by segment name (for cleanup and same-process attach).
_LIVE_STORES: Dict[str, "SharedWorldStore"] = {}

#: Worker-side attached worlds by segment name: attach once per process.
_ATTACHED_WORLDS: Dict[str, object] = {}

#: Keeps each attached segment's mapping alive while its views are in use.
_ATTACHED_SEGMENTS: Dict[str, shared_memory.SharedMemory] = {}


class SharedWorldStore:
    """Publishes one world's columnar state into a shared-memory segment.

    Creating the store copies the world's columns — instance arrays, the
    per-video ``(starts, ends, ids)`` interval indexes, repository/video
    metadata — into a fresh named segment and marks the world as
    published: from then until :meth:`close`, pickling the world emits a
    :class:`SharedWorldHandle` instead of its megabytes of instances.

    The creator owns the segment. Use as a context manager (or call
    :meth:`close`) so the name is unlinked from ``/dev/shm`` on success,
    error and worker crash alike; a module ``atexit`` hook backstops
    stores that were never closed.
    """

    def __init__(self, world):
        if getattr(world, "_shared_handle", None) is not None:
            raise ConfigError(
                "world is already published to shared memory; close its "
                "existing SharedWorldStore first"
            )
        columns, meta = world.shared_columns()
        specs: List[Tuple[str, str, tuple, int]] = []
        planned: List[Tuple[int, np.ndarray]] = []
        data_size = 0
        for key, array in columns.items():
            array = np.ascontiguousarray(array)
            offset = _align(data_size)
            specs.append((key, array.dtype.str, array.shape, offset))
            planned.append((offset, array))
            data_size = offset + array.nbytes
        meta_blob = pickle.dumps(
            {"meta": meta, "specs": specs}, protocol=pickle.HIGHEST_PROTOCOL
        )
        data_base = _align(_HEADER.size + len(meta_blob))
        name = SEGMENT_PREFIX + uuid.uuid4().hex[:16]
        self._shm = shared_memory.SharedMemory(
            name=name, create=True, size=max(data_base + data_size, 1)
        )
        buf = self._shm.buf
        _HEADER.pack_into(buf, 0, len(meta_blob), data_base)
        buf[_HEADER.size : _HEADER.size + len(meta_blob)] = meta_blob
        for offset, array in planned:
            if array.nbytes == 0:
                continue
            view = np.ndarray(
                array.shape,
                dtype=array.dtype,
                buffer=buf,
                offset=data_base + offset,
            )
            view[...] = array
        self.world = world
        self.handle = SharedWorldHandle(segment=name)
        world._shared_handle = self.handle
        _LIVE_STORES[name] = self

    def close(self) -> None:
        """Unpublish the world and unlink the segment (idempotent)."""
        name = self.handle.segment
        if _LIVE_STORES.pop(name, None) is None:
            return
        if getattr(self.world, "_shared_handle", None) == self.handle:
            self.world._shared_handle = None
        try:
            self._shm.close()
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def __enter__(self) -> "SharedWorldStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def publish_worlds(worlds: Iterable) -> List[SharedWorldStore]:
    """Publish every not-yet-published world; returns the stores to close.

    Worlds that already travel as handles (published by an outer scope)
    are left alone — their owner closes them.
    """
    stores: List[SharedWorldStore] = []
    seen: set = set()
    for world in worlds:
        if id(world) in seen:
            continue
        seen.add(id(world))
        if getattr(world, "_shared_handle", None) is not None:
            continue
        stores.append(SharedWorldStore(world))
    return stores


def attach_shared_world(handle: SharedWorldHandle):
    """Rebuild a world from its shared segment (the unpickle target).

    Attachment is memoized per process: however many tasks a worker
    executes, the segment is mapped and parsed once, and every unpickle
    of the same handle returns the *same* world object — preserving
    object identity across an engine's internal references exactly as
    in-process pickling memoization would. In the publishing process
    itself the original world is returned directly.
    """
    world = _ATTACHED_WORLDS.get(handle.segment)
    if world is not None:
        return world
    store = _LIVE_STORES.get(handle.segment)
    if store is not None:
        return store.world
    # Attaching registers the name with the resource tracker a second
    # time; registration is a set shared by the whole process tree, so
    # this collapses harmlessly and the creating store's unlink()
    # unregisters the name once for everyone. The tracker only acts at
    # tree shutdown, which leaves it as exactly the crash backstop we
    # want: a hard-killed parent's segments are still reaped.
    segment = shared_memory.SharedMemory(name=handle.segment)
    meta_len, data_base = _HEADER.unpack_from(segment.buf, 0)
    payload = pickle.loads(bytes(segment.buf[_HEADER.size : _HEADER.size + meta_len]))
    columns: Dict[str, np.ndarray] = {}
    for key, dtype, shape, offset in payload["specs"]:
        view = np.ndarray(
            shape, dtype=np.dtype(dtype), buffer=segment.buf, offset=data_base + offset
        )
        view.flags.writeable = False
        columns[key] = view
    from repro.video.synthetic import SyntheticWorld

    world = SyntheticWorld.from_shared_columns(columns, payload["meta"], handle)
    _ATTACHED_WORLDS[handle.segment] = world
    _ATTACHED_SEGMENTS[handle.segment] = segment
    return world


def _close_all_stores() -> None:  # pragma: no cover - interpreter shutdown
    for store in list(_LIVE_STORES.values()):
        store.close()


atexit.register(_close_all_stores)


# -- one detection memo for a whole pool -------------------------------------


_MANAGER = None
_PROCESS_CACHE: Optional["SharedDetectionCache"] = None

#: Reserved first element of in-store counter rows; detection keys are
#: ``(scope_digest, video, frame, class_filter)`` tuples whose scope is a
#: blake2 hex digest, so this sentinel can never collide with one.
_COUNTERS_PREFIX = "__repro_counters__"


def _is_counter_key(key) -> bool:
    return (
        isinstance(key, tuple) and len(key) == 2 and key[0] == _COUNTERS_PREFIX
    )


def _manager():
    """The process's lazily started ``multiprocessing.Manager`` server."""
    global _MANAGER
    if _MANAGER is None:
        import multiprocessing

        _MANAGER = multiprocessing.Manager()
    return _MANAGER


class SharedDetectionCache(DetectionCache):
    """A cross-process :class:`~repro.detection.cache.DetectionCache`.

    Detection rows are pickled into a manager-served dict proxy, so all
    workers of a pool (and the parent) read and write one memo: a frame
    any process detected is a hit for every process after it. The
    manager server executes each dict operation atomically, and
    deterministic detection makes concurrent puts on one key
    byte-identical, so races are harmless by construction.

    ``hits``/``misses`` count *this process's* lookups (the store itself
    is shared; counters are deliberately local so reading them costs no
    IPC) — a worker reporting ``hits > 0`` on a cold private start is
    proof the entries came from another process.

    Pickling ships the proxy, not the contents, so an engine carrying
    this cache fans out to workers still wired to the one shared store.
    The proxy only resolves inside the owning process tree while the
    creator is alive — for durable ``QuerySession`` checkpoints use a
    plain per-process cache policy.

    One shared store routinely serves detectors over *different*
    worlds, seeds and noise profiles (a multi-dataset sweep's workers
    all adopt the same cache); like every detection cache it is
    ``scoped``, so each detector namespaces its keys with its
    content-derived ``cache_scope`` and entries can never cross
    detectors.
    """

    #: ``in`` on the manager proxy is an IPC round-trip; stat-only
    #: probes (the serving batcher's hit attribution) must not pay it.
    fast_contains = False

    def __init__(self, store=None):
        self._store = _manager().dict() if store is None else store
        self.policy = "shared"
        self.capacity = None
        self.hits = 0
        self.misses = 0
        self._scope_hits = {}
        self._scope_misses = {}

    def __len__(self) -> int:
        # Counter rows (see publish_counters) live in the same store but
        # are bookkeeping, not memoized detections.
        return sum(
            1 for key in self._store.keys() if not _is_counter_key(key)
        )

    def get(self, key: CacheKey):
        """The cached detection list for ``key``, or None on a miss."""
        scope = self._scope_of(key)
        blob = self._store.get(key)
        if blob is None:
            self.misses += 1
            self._scope_misses[scope] = self._scope_misses.get(scope, 0) + 1
            return None
        self.hits += 1
        self._scope_hits[scope] = self._scope_hits.get(scope, 0) + 1
        return pickle.loads(blob)

    def put(self, key: CacheKey, detections) -> None:
        """Memoize one frame's finished detections for every process."""
        self._store[key] = pickle.dumps(
            list(detections), protocol=pickle.HIGHEST_PROTOCOL
        )

    def clear(self) -> None:
        """Drop the shared entries and reset this process's counters."""
        self._store.clear()
        self.hits = 0
        self.misses = 0
        self._scope_hits.clear()
        self._scope_misses.clear()

    def snapshot(self, scope=None):
        """A counter-free copy of the stored entries (see the base class).

        Fetched key by key so only the requested scope's blobs cross the
        manager connection; counter rows (process bookkeeping in the same
        store) are excluded. Pays one IPC round-trip per entry — callers
        like the repository-index recorder restrict to one scope.
        """
        entries = {}
        for key in self._store.keys():
            if _is_counter_key(key):
                continue
            if scope is not None and self._scope_of(key) != scope:
                continue
            blob = self._store.get(key)
            if blob is not None:
                entries[key] = pickle.loads(blob)
        return entries

    def info(self) -> CacheInfo:
        return CacheInfo(
            policy=self.policy,
            hits=self.hits,
            misses=self.misses,
            size=len(self),
            capacity=None,
            per_scope=self._per_scope(),
        )

    # -- cross-process counter aggregation --------------------------------

    def publish_counters(self) -> None:
        """Publish this process's local counters into the shared store.

        Hit/miss counters are deliberately process-local (reading them
        costs no IPC), which leaves a fleet blind: each shard process
        knows only its own share of the per-scope breakdown. Publishing
        writes this process's cumulative counters under a reserved
        per-process key — one small row, overwritten in place on every
        call — so any process holding the store can assemble the
        fleet-wide picture with :meth:`aggregate_info`. Shard servers
        publish whenever they answer a ``stats`` frame.
        """
        if not hasattr(self, "_counter_token"):
            self._counter_token = f"{os.getpid()}:{uuid.uuid4().hex[:8]}"
        scopes = set(self._scope_hits) | set(self._scope_misses)
        payload = {
            scope: (
                self._scope_hits.get(scope, 0),
                self._scope_misses.get(scope, 0),
            )
            for scope in scopes
        }
        self._store[(_COUNTERS_PREFIX, self._counter_token)] = pickle.dumps(
            (self.hits, self.misses, payload),
            protocol=pickle.HIGHEST_PROTOCOL,
        )

    def aggregate_info(self) -> CacheInfo:
        """Fleet-wide :class:`CacheInfo`: every process's published counters.

        Sums the counter rows of all processes that have called
        :meth:`publish_counters` (this process's live counters are
        published first, so they are always included). ``size`` counts
        the shared detection rows once — they are one store, however many
        processes read it. Counter rows are fetched individually so the
        memoized detection blobs never cross the manager connection.
        """
        self.publish_counters()
        hits = misses = size = 0
        scopes: Dict[str, List[int]] = {}
        for key in self._store.keys():
            if not _is_counter_key(key):
                size += 1
                continue
            blob = self._store.get(key)
            if blob is None:
                continue
            row_hits, row_misses, per_scope = pickle.loads(blob)
            hits += row_hits
            misses += row_misses
            for scope, (scope_hits, scope_misses) in per_scope.items():
                entry = scopes.setdefault(scope, [0, 0])
                entry[0] += scope_hits
                entry[1] += scope_misses
        return CacheInfo(
            policy=self.policy,
            hits=hits,
            misses=misses,
            size=size,
            capacity=None,
            per_scope={
                scope: ScopeCacheInfo(hits=h, misses=m)
                for scope, (h, m) in scopes.items()
            },
        )

    def __getstate__(self) -> dict:
        return {"store": self._store}

    def __setstate__(self, state: dict) -> None:
        self._store = state["store"]
        self.policy = "shared"
        self.capacity = None
        self.hits = 0
        self.misses = 0
        self._scope_hits = {}
        self._scope_misses = {}


def shared_detection_cache() -> SharedDetectionCache:
    """This process's shared detection cache (one per process).

    In a pool parent the first call starts the manager server and
    creates the store; workers receive the parent's cache through the
    pool initializer (:func:`adopt_shared_cache`), so their engines —
    including ones built inside the worker via ``dataset_engine`` with
    the ``shared`` cache policy — all join the same memo.
    """
    global _PROCESS_CACHE
    if _PROCESS_CACHE is None:
        _PROCESS_CACHE = SharedDetectionCache()
    return _PROCESS_CACHE


def adopt_shared_cache(cache: SharedDetectionCache) -> None:
    """Install a pool parent's shared cache as this process's cache."""
    global _PROCESS_CACHE
    _PROCESS_CACHE = cache
