"""Shared-memory state transport for process-parallel execution.

See :mod:`repro.parallel.shm` for the two primitives: a
:class:`~repro.parallel.shm.SharedWorldStore` that ships synthetic
worlds to workers as ~100-byte handles over named shared memory, and a
:class:`~repro.parallel.shm.SharedDetectionCache` that gives every
process in a pool one detection memo.
"""

from repro.parallel.shm import (
    SharedDetectionCache,
    SharedWorldHandle,
    SharedWorldStore,
    adopt_shared_cache,
    attach_shared_world,
    publish_worlds,
    shared_detection_cache,
)

__all__ = [
    "SharedDetectionCache",
    "SharedWorldHandle",
    "SharedWorldStore",
    "adopt_shared_cache",
    "attach_shared_world",
    "publish_worlds",
    "shared_detection_cache",
]
